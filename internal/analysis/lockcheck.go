package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// AnalyzerLockCheck enforces the `// guarded by <mu>` field annotations:
// every read or write of an annotated struct field must happen in a
// function that acquires the named mutex on the same holder expression
// before the access.
//
// The pass is a lexical discipline checker, not an alias analysis: holders
// are matched by spelling (`m`, `rt.metrics`), which is exactly the
// convention the annotations encode. Three shapes are exempt:
//
//   - functions whose name ends in "Locked", and functions whose doc
//     comment says the mutex is held by the caller (e.g. "callers hold
//     mu") — the repo's convention for helpers called under the lock;
//   - freshly constructed values: accesses through a local variable that
//     the same function created via a composite literal or new(), which no
//     other goroutine can see yet;
//   - the composite literal itself (field keys are not accesses).
//
// Lock acquisitions inside a nested function literal do not cover the
// enclosing function and vice versa: a goroutine body must take the lock
// itself.
var AnalyzerLockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "accesses to `// guarded by mu` fields without holding the mutex",
	Run:  runLockCheck,
}

var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// heldByCallerRe matches doc comments that transfer the locking obligation
// to the caller ("callers hold mu", "mu must be held", "holding latMu").
var heldByCallerRe = regexp.MustCompile(`(?i)\b(hold|holds|held|holding)\b`)

type guardedField struct {
	structName string
	mutex      string
}

func runLockCheck(p *Pass) {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockScope(p, guards, fd, fd.Body, funcDoc(fd))
		}
	}
}

// collectGuards maps each annotated field object to its guard.
func collectGuards(p *Pass) map[*types.Var]guardedField {
	guards := make(map[*types.Var]guardedField)
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.Pkg.Info.Defs[name].(*types.Var); ok {
						guards[v] = guardedField{structName: ts.Name.Name, mutex: mu}
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkLockScope checks guarded accesses directly inside body (function
// literals open a fresh scope and are recursed into separately — their
// accesses need their own Lock, and their Locks don't cover the outer
// function).
func checkLockScope(p *Pass, guards map[*types.Var]guardedField, scope ast.Node, body *ast.BlockStmt, doc string) {
	info := p.Pkg.Info
	callerHolds := heldByCallerRe.MatchString(doc)
	name := ""
	if fd, ok := scope.(*ast.FuncDecl); ok {
		name = fd.Name.Name
	}
	exempt := callerHolds || strings.HasSuffix(name, "Locked")

	locks := lockSites(p, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && n != scope {
			checkLockScope(p, guards, lit, lit.Body, "")
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		fv, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, guarded := guards[fv]
		if !guarded || exempt {
			return true
		}
		holder := exprString(p.Mod.Fset, sel.X)
		if freshLocal(info, sel.X, body) {
			return true
		}
		for _, l := range locks {
			if l.holder == holder && l.mutex == g.mutex && l.pos < sel.Pos() {
				return true
			}
		}
		p.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s but accessed without %s.%s.Lock()/RLock() (or a *Locked helper convention)", g.structName, fv.Name(), g.mutex, holder, g.mutex)
		return true
	})
}

type lockSite struct {
	holder string
	mutex  string
	pos    token.Pos
}

// lockSites finds every `<holder>.<mu>.Lock()` / `.RLock()` call directly
// in body, excluding nested function literals.
func lockSites(p *Pass, body *ast.BlockStmt) []lockSite {
	var sites []lockSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sites = append(sites, lockSite{
			holder: exprString(p.Mod.Fset, muSel.X),
			mutex:  muSel.Sel.Name,
			pos:    call.Pos(),
		})
		return true
	})
	return sites
}

// freshLocal reports whether the access base is a local variable that this
// function freshly constructed (composite literal or new), and which
// therefore cannot be shared with another goroutine yet.
func freshLocal(info *types.Info, holder ast.Expr, body *ast.BlockStmt) bool {
	id := baseIdent(holder)
	if id == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	fresh := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || fresh {
			return !fresh
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || info.Defs[lid] != obj || i >= len(as.Rhs) {
				continue
			}
			if constructsValue(as.Rhs[i]) {
				fresh = true
			}
		}
		return !fresh
	})
	return fresh
}

func constructsValue(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := v.X.(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

func funcDoc(fd *ast.FuncDecl) string {
	if fd.Doc == nil {
		return ""
	}
	return fd.Doc.Text()
}
