package analysis

import (
	"go/ast"
)

// AnalyzerCtxFlow enforces context propagation through the serving tiers:
// below the request roots in serve, fleet and edgecloud, cancellation must
// flow — a function that already has a context.Context (its own parameter
// or one captured from an enclosing function) must not mint a fresh root
// with context.Background()/context.TODO(), and must build outbound
// requests with http.NewRequestWithContext rather than http.NewRequest.
//
// True roots — functions with no Context anywhere in scope, like the
// graceful-shutdown path or the probe loop's ticker — may still call
// context.Background(); that is what makes them roots.
var AnalyzerCtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Background()/TODO() and ctx-less requests below serving roots",
	Run:  runCtxFlow,
}

var ctxFlowRels = []string{"internal/serve", "internal/fleet", "internal/edgecloud"}

func runCtxFlow(p *Pass) {
	if !hasRelPrefix(p.Pkg, ctxFlowRels...) {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !ctxInScope(p, stack) {
				return true
			}
			switch {
			case pkgFunc(info, call, "context", "Background"):
				p.Reportf(call.Pos(), "context.Background() below a serving root: a Context is already in scope — derive from it (context.WithTimeout(ctx, ...)) so cancellation propagates")
			case pkgFunc(info, call, "context", "TODO"):
				p.Reportf(call.Pos(), "context.TODO() below a serving root: a Context is already in scope — pass it through")
			case pkgFunc(info, call, "net/http", "NewRequest"):
				p.Reportf(call.Pos(), "http.NewRequest below a serving root drops the in-scope Context; use http.NewRequestWithContext(ctx, ...)")
			}
			return true
		})
	}
}

// ctxInScope reports whether any enclosing function in the ancestor chain
// declares a context.Context parameter, or a context-typed variable is
// visibly bound in an enclosing function's parameters. (Capture of a
// ctx-typed local by a literal also counts, via the enclosing FuncDecl's
// parameters being in the chain.)
func ctxInScope(p *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ft := funcType(stack[i])
		if ft == nil || ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			tv, ok := p.Pkg.Info.Types[field.Type]
			if ok && isContextType(tv.Type) {
				return true
			}
		}
	}
	return false
}
