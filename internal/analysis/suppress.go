package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// allowRe matches an inline waiver:
//
//	//cdlvet:allow determinism -- profiling timestamps never reach outputs
//	//cdlvet:allow determinism,ctxflow -- reason
//
// The "-- reason" tail is mandatory: a waiver without a recorded
// justification is itself reported by the driver (as a malformed
// directive), so every grandfathered site documents why it is safe.
var allowRe = regexp.MustCompile(`^//cdlvet:allow\s+([a-z][a-z0-9_,\s]*?)\s+--\s+\S`)

var allowPrefixRe = regexp.MustCompile(`^//cdlvet:allow\b`)

// scanDirectives records every //cdlvet:allow directive of f, keyed by file
// and line. Malformed directives (no analyzer list or no reason) are stored
// under the pseudo-analyzer name "!malformed" so the driver can surface
// them.
func (m *Module) scanDirectives(path string, f *ast.File) {
	rel, err := filepath.Rel(m.Dir, path)
	if err != nil {
		rel = path
	}
	rel = filepath.ToSlash(rel)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !allowPrefixRe.MatchString(text) {
				continue
			}
			line := m.Fset.Position(c.Pos()).Line
			byLine := m.allow[rel]
			if byLine == nil {
				byLine = make(map[int][]string)
				m.allow[rel] = byLine
			}
			sub := allowRe.FindStringSubmatch(text)
			if sub == nil {
				byLine[line] = append(byLine[line], "!malformed")
				continue
			}
			for _, name := range strings.Split(sub[1], ",") {
				name = strings.TrimSpace(name)
				if name != "" {
					byLine[line] = append(byLine[line], name)
				}
			}
		}
	}
}

// allowed reports whether f is waived by an inline directive on its line or
// the line above.
func (m *Module) allowed(f Finding) bool {
	byLine := m.allow[f.File]
	if byLine == nil {
		return false
	}
	for _, line := range []int{f.Line, f.Line - 1} {
		for _, name := range byLine[line] {
			if name == f.Analyzer {
				return true
			}
		}
	}
	return false
}

// MalformedDirectives returns a finding for every //cdlvet:allow directive
// missing an analyzer list or a "-- reason" tail.
func (m *Module) MalformedDirectives() []Finding {
	var out []Finding
	for file, byLine := range m.allow {
		for line, names := range byLine {
			for _, n := range names {
				if n == "!malformed" {
					out = append(out, Finding{
						Analyzer: "cdlvet",
						File:     file,
						Line:     line,
						Col:      1,
						Message:  "malformed //cdlvet:allow directive: want //cdlvet:allow <analyzer>[,<analyzer>] -- <reason>",
					})
				}
			}
		}
	}
	return out
}

// BaselineEntry grandfathers one finding: it matches on analyzer, file and
// message but deliberately not on line number, so unrelated edits to the
// same file do not churn the baseline.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// LoadBaseline reads a baseline file (a JSON array of entries). A missing
// file is an empty baseline.
func LoadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return entries, nil
}

// WriteBaseline writes the findings as a baseline file.
func WriteBaseline(path string, findings []Finding) error {
	entries := make([]BaselineEntry, 0, len(findings))
	for _, f := range findings {
		entries = append(entries, BaselineEntry{Analyzer: f.Analyzer, File: f.File, Message: f.Message})
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ApplyBaseline splits findings into new (not grandfathered) and baselined,
// and reports stale baseline entries that no longer match anything — the
// signal to shrink the file.
func ApplyBaseline(findings []Finding, entries []BaselineEntry) (fresh, baselined []Finding, stale []BaselineEntry) {
	used := make([]bool, len(entries))
	for _, f := range findings {
		matched := false
		for i, e := range entries {
			if e.Analyzer == f.Analyzer && e.File == f.File && e.Message == f.Message {
				used[i] = true
				matched = true
				break
			}
		}
		if matched {
			baselined = append(baselined, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	for i, e := range entries {
		if !used[i] {
			stale = append(stale, e)
		}
	}
	return fresh, baselined, stale
}
