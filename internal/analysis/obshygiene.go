package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// AnalyzerObsHygiene enforces the observability contract of the serving
// tiers (serve, fleet, edgecloud):
//
//   - every *http.ServeMux that receives Handle/HandleFunc registrations
//     must be wrapped by obs.Middleware before serving, so every handler
//     gets trace-id echo, slow-request logging and span roots;
//   - metric names passed to obs.Prom must be compile-time constants (the
//     bounded-cardinality guarantee starts with statically known families)
//     matching Prometheus naming rules, with the repo's unit-suffix
//     conventions: counters end in _total, histograms carry a unit suffix
//     (_ms, _seconds, _bytes, _pj, _ops), and no name uses the reserved
//     _bucket/_sum/_count endings. Helpers that forward a string parameter
//     into a Prom method are treated as sinks themselves, so their call
//     sites are checked instead.
var AnalyzerObsHygiene = &Analyzer{
	Name: "obshygiene",
	Doc:  "handlers outside obs.Middleware and malformed metric names",
	Run:  runObsHygiene,
}

var obsHygieneRels = []string{"internal/serve", "internal/fleet", "internal/edgecloud"}

var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

var histogramUnits = []string{"_ms", "_seconds", "_bytes", "_pj", "_ops"}

func runObsHygiene(p *Pass) {
	if !hasRelPrefix(p.Pkg, obsHygieneRels...) {
		return
	}
	checkMuxWrapping(p)
	checkMetricNames(p)
}

// --- mux wrapping ---

func checkMuxWrapping(p *Pass) {
	info := p.Pkg.Info
	registered := make(map[types.Object]token.Pos)
	wrapped := make(map[types.Object]bool)
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Handle" || sel.Sel.Name == "HandleFunc") &&
				isServeMux(info.Types[sel.X].Type) {
				if obj := referencedObject(info, sel.X); obj != nil {
					if _, seen := registered[obj]; !seen {
						registered[obj] = call.Pos()
					}
				}
			}
			if callee := calleeOf(info, call); callee != nil && callee.Name() == "Middleware" &&
				callee.Pkg() != nil && strings.HasSuffix(callee.Pkg().Path(), "internal/obs") {
				for _, arg := range call.Args {
					markMuxObjects(info, arg, wrapped)
				}
			}
			return true
		})
	}
	for obj, pos := range registered {
		if !wrapped[obj] {
			p.Reportf(pos, "handlers registered on %s but the mux is never wrapped by obs.Middleware: requests will miss tracing, trace-id echo and slow-request logging", obj.Name())
		}
	}
}

func isServeMux(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ServeMux"
}

// referencedObject resolves the variable or field a mux expression names:
// the field object for s.mux, the var object for a local mux.
func referencedObject(info *types.Info, e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.Ident:
		return info.Uses[v]
	case *ast.SelectorExpr:
		if s := info.Selections[v]; s != nil {
			return s.Obj()
		}
		return info.Uses[v.Sel]
	case *ast.ParenExpr:
		return referencedObject(info, v.X)
	}
	return nil
}

// markMuxObjects records every ServeMux-typed object referenced anywhere in
// the expression (handles obs.Middleware(s.mux, ...) as well as wrappers
// around the mux).
func markMuxObjects(info *types.Info, e ast.Expr, out map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[expr]; ok && isServeMux(tv.Type) {
			if obj := referencedObject(info, expr); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
}

// --- metric names ---

// metricSink is one function whose string argument at argIndex is a metric
// family name; kind is "counter", "gauge", "histogram" or "any".
type metricSink struct {
	argIndex int
	kind     string
}

func checkMetricNames(p *Pass) {
	info := p.Pkg.Info
	sinks := make(map[types.Object]metricSink)

	// Seed with obs.Prom's methods from any imported obs package.
	for _, imp := range p.Pkg.Types.Imports() {
		if !strings.HasSuffix(imp.Path(), "internal/obs") {
			continue
		}
		if tn, ok := imp.Scope().Lookup("Prom").(*types.TypeName); ok {
			if named, ok := tn.Type().(*types.Named); ok {
				for i := 0; i < named.NumMethods(); i++ {
					m := named.Method(i)
					switch m.Name() {
					case "Counter", "Gauge", "Histogram":
						sinks[m] = metricSink{argIndex: 0, kind: strings.ToLower(m.Name())}
					}
				}
			}
		}
	}
	if len(sinks) == 0 {
		return
	}

	// Fixpoint: package functions that forward a string parameter into a
	// sink's name slot become sinks too.
	paramIndex := func(fd *ast.FuncDecl, obj types.Object) int {
		idx := 0
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if info.Defs[name] == obj {
					return idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
		return -1
	}
	for changed := true; changed; {
		changed = false
		for _, file := range p.Pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fObj := info.Defs[fd.Name]
				if fObj == nil {
					continue
				}
				if _, done := sinks[fObj]; done {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeOf(info, call)
					sink, isSink := sinks[callee]
					if !isSink || sink.argIndex >= len(call.Args) {
						return true
					}
					id, ok := call.Args[sink.argIndex].(*ast.Ident)
					if !ok {
						return true
					}
					pObj := info.Uses[id]
					if pObj == nil {
						return true
					}
					if idx := paramIndex(fd, pObj); idx >= 0 {
						sinks[fObj] = metricSink{argIndex: idx, kind: sink.kind}
						changed = true
					}
					return true
				})
			}
		}
	}

	// Validate every sink call site.
	for _, file := range p.Pkg.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(info, call)
			sink, isSink := sinks[callee]
			if !isSink || sink.argIndex >= len(call.Args) {
				return true
			}
			arg := call.Args[sink.argIndex]
			tv := info.Types[arg]
			if tv.Value != nil && tv.Value.Kind() == constant.String {
				validateMetricName(p, arg.Pos(), constant.StringVal(tv.Value), sink.kind)
				return true
			}
			// Non-constant name: fine only if this call sits inside a
			// function that is itself a sink forwarding the same parameter
			// (its callers are checked instead).
			if id, ok := arg.(*ast.Ident); ok {
				if fn, ok := enclosingFunc(stack).(*ast.FuncDecl); ok && fn != nil {
					if fObj := info.Defs[fn.Name]; fObj != nil {
						if _, forwarded := sinks[fObj]; forwarded && info.Uses[id] != nil {
							return true
						}
					}
				}
			}
			p.Reportf(arg.Pos(), "metric name is not a compile-time constant: dynamic families break the bounded-cardinality guarantee of /metricsz")
			return true
		})
	}
}

func validateMetricName(p *Pass, pos token.Pos, name, kind string) {
	if !metricNameRe.MatchString(name) || strings.Contains(name, "__") {
		p.Reportf(pos, "metric name %q violates Prometheus naming rules (want ^[a-z][a-z0-9_]*$ without double underscores)", name)
		return
	}
	for _, reserved := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, reserved) {
			p.Reportf(pos, "metric name %q ends in reserved histogram suffix %q", name, reserved)
			return
		}
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			p.Reportf(pos, "counter %q must end in _total", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			p.Reportf(pos, "gauge %q must not end in _total (that suffix marks counters)", name)
		}
	case "histogram":
		for _, u := range histogramUnits {
			if strings.HasSuffix(name, u) {
				return
			}
		}
		p.Reportf(pos, "histogram %q must carry a unit suffix (one of %s)", name, strings.Join(histogramUnits, ", "))
	}
}
