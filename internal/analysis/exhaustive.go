package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerExhaustive enforces the fast-path and accounting surfaces of the
// layer abstraction: every concrete type in the module that implements
// nn.Layer must also
//
//   - implement nn.BatchLayer (ForwardBatch), so it cannot silently fall
//     off the batched im2col+GEMM fast path into the per-sample fallback;
//   - be handled by opcount.LayerOps's type switch, so the paper's
//     ops-per-input metric and the 45 nm energy accounting stay total over
//     the layer set.
//
// A new layer that misses either surface compiles and passes unit tests
// today (the fallback keeps it correct, the op switch panics only when an
// unknown layer is actually costed) — exactly the kind of sampled-only
// invariant this suite exists to pin at build time.
var AnalyzerExhaustive = &Analyzer{
	Name:      "exhaustive",
	Doc:       "nn.Layer implementations missing BatchLayer or opcount coverage",
	RunModule: runExhaustive,
}

func runExhaustive(p *Pass) {
	nnPkg := p.Mod.Lookup("internal/nn")
	if nnPkg == nil || nnPkg.Types == nil {
		return
	}
	layerIface := lookupInterface(nnPkg.Types, "Layer")
	batchIface := lookupInterface(nnPkg.Types, "BatchLayer")
	if layerIface == nil {
		return
	}

	opcountCases := opcountSwitchTypes(p.Mod)

	for _, pkg := range p.All {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			T := tn.Type()
			if types.IsInterface(T) {
				continue
			}
			ptr := types.NewPointer(T)
			if !types.Implements(T, layerIface) && !types.Implements(ptr, layerIface) {
				continue
			}
			if batchIface != nil && !types.Implements(T, batchIface) && !types.Implements(ptr, batchIface) {
				p.Reportf(tn.Pos(), "%s implements nn.Layer but not nn.BatchLayer: it silently falls off the batched fast path into the per-sample fallback (add ForwardBatch)", tn.Name())
			}
			if opcountCases != nil && !opcountCases[tn] {
				p.Reportf(tn.Pos(), "%s implements nn.Layer but is not handled in opcount.LayerOps: ops/energy accounting panics the first time this layer is costed (add a case)", tn.Name())
			}
		}
	}
}

func lookupInterface(pkg *types.Package, name string) *types.Interface {
	tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := tn.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	return iface
}

// opcountSwitchTypes collects the concrete layer types named by the type
// switch inside opcount.LayerOps; nil when the package or function is
// absent (the check is then skipped).
func opcountSwitchTypes(mod *Module) map[*types.TypeName]bool {
	pkg := mod.Lookup("internal/opcount")
	if pkg == nil {
		return nil
	}
	var fn *ast.FuncDecl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "LayerOps" && fd.Recv == nil {
				fn = fd
			}
		}
	}
	if fn == nil || fn.Body == nil {
		return nil
	}
	cases := make(map[*types.TypeName]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, expr := range cc.List {
				tv, ok := pkg.Info.Types[expr]
				if !ok {
					continue
				}
				t := tv.Type
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					cases[named.Obj()] = true
				}
			}
		}
		return true
	})
	return cases
}
