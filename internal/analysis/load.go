package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Module is one loaded Go module: every non-test package parsed and
// type-checked against a shared FileSet.
type Module struct {
	// Path is the module path from go.mod (e.g. "cdl").
	Path string
	// Dir is the module root on disk.
	Dir  string
	Fset *token.FileSet
	// Packages is every package in dependency (load) order.
	Packages []*Package

	// allow maps file → line → analyzer names waived by //cdlvet:allow.
	allow map[string]map[int][]string
}

// Package is one type-checked package of the module.
type Package struct {
	Mod *Module
	// Path is the import path ("cdl/internal/nn").
	Path string
	// Rel is the directory relative to the module root ("" at the root).
	Rel string
	Dir string
	// Selected reports whether the package matched the driver's patterns
	// (dependencies of selected packages load either way).
	Selected bool

	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// LoadModule parses and type-checks every non-test package under the module
// rooted at (or above) dir. Patterns select which packages analyzers will
// visit: "./..." selects everything, "./internal/serve" one package,
// "./internal/..." a subtree. All packages are loaded regardless, since
// selected packages may depend on unselected ones and module-wide passes
// need the full picture.
func LoadModule(dir string, patterns []string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	mod := &Module{
		Path:  modPath,
		Dir:   root,
		Fset:  token.NewFileSet(),
		allow: make(map[string]map[int][]string),
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	byRel := make(map[string]*parsedDir)
	var rels []string
	for _, rel := range dirs {
		p, err := mod.parseDir(rel)
		if err != nil {
			return nil, err
		}
		if p == nil || len(p.files) == 0 {
			continue
		}
		byRel[rel] = p
		rels = append(rels, rel)
	}

	// Topological order over intra-module imports so each package's
	// dependencies are type-checked before it.
	order, err := topoSort(mod, rels, byRel, func(rel string) map[string]bool { return byRel[rel].imports })
	if err != nil {
		return nil, err
	}

	src := importer.ForCompiler(mod.Fset, "source", nil)
	imp := &chainImporter{mod: mod, fallback: src, pkgs: make(map[string]*types.Package)}
	for _, rel := range order {
		p := byRel[rel]
		pkg := &Package{
			Mod:      mod,
			Path:     importPath(modPath, rel),
			Rel:      rel,
			Dir:      filepath.Join(root, filepath.FromSlash(rel)),
			Files:    p.files,
			Selected: matchPatterns(patterns, rel),
			Info: &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
				Implicits:  make(map[ast.Node]types.Object),
				Scopes:     make(map[ast.Node]*types.Scope),
			},
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tpkg, _ := conf.Check(pkg.Path, mod.Fset, pkg.Files, pkg.Info)
		pkg.Types = tpkg
		imp.pkgs[pkg.Path] = tpkg
		mod.Packages = append(mod.Packages, pkg)
	}
	return mod, nil
}

// Lookup returns the loaded package with the given module-relative
// directory ("internal/nn"), or nil.
func (m *Module) Lookup(rel string) *Package {
	for _, p := range m.Packages {
		if p.Rel == rel {
			return p
		}
	}
	return nil
}

// TypeErrors collects the type errors of every selected package.
func (m *Module) TypeErrors() []error {
	var errs []error
	for _, p := range m.Packages {
		errs = append(errs, p.TypeErrors...)
	}
	return errs
}

func importPath(modPath, rel string) string {
	if rel == "" {
		return modPath
	}
	return modPath + "/" + rel
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			m := moduleRe.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
			}
			return d, string(m[1]), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// packageDirs returns every module-relative directory that holds non-test
// .go files, skipping testdata, hidden and underscore directories and
// nested modules.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				if rel == "." {
					rel = ""
				}
				dirs = append(dirs, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

type parsedDir struct {
	files   []*ast.File
	imports map[string]bool
}

// parseDir parses the non-test files of one package directory and records
// its //cdlvet:allow directives.
func (m *Module) parseDir(rel string) (*parsedDir, error) {
	dir := filepath.Join(m.Dir, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := &parsedDir{imports: make(map[string]bool)}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		out.files = append(out.files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil {
				out.imports[p] = true
			}
		}
		m.scanDirectives(path, f)
	}
	return out, nil
}

// topoSort orders package dirs so intra-module dependencies come first.
func topoSort(m *Module, rels []string, byRel map[string]*parsedDir, imports func(string) map[string]bool) ([]string, error) {
	relOf := make(map[string]string) // import path → rel
	for _, rel := range rels {
		relOf[importPath(m.Path, rel)] = rel
	}
	const (
		white = iota
		grey
		black
	)
	state := make(map[string]int)
	var order []string
	var visit func(rel string, stack []string) error
	visit = func(rel string, stack []string) error {
		switch state[rel] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("analysis: import cycle through %s (%s)", rel, strings.Join(stack, " → "))
		}
		state[rel] = grey
		var deps []string
		for imp := range imports(rel) {
			if dep, ok := relOf[imp]; ok && dep != rel {
				deps = append(deps, dep)
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep, append(stack, rel)); err != nil {
				return err
			}
		}
		state[rel] = black
		order = append(order, rel)
		return nil
	}
	for _, rel := range rels {
		if err := visit(rel, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func matchPatterns(patterns []string, rel string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		p = strings.TrimPrefix(p, "./")
		p = strings.TrimSuffix(p, "/")
		switch {
		case p == "..." || p == ".":
			return true
		case strings.HasSuffix(p, "/..."):
			prefix := strings.TrimSuffix(p, "/...")
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		default:
			if rel == p {
				return true
			}
		}
	}
	return false
}

// chainImporter resolves module-internal import paths to the packages this
// loader already checked and everything else (the standard library) through
// the source importer, keeping the tool free of external dependencies.
type chainImporter struct {
	mod      *Module
	fallback types.Importer
	pkgs     map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, c.mod.Dir, 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == c.mod.Path || strings.HasPrefix(path, c.mod.Path+"/") {
		if p, ok := c.pkgs[path]; ok && p != nil {
			return p, nil
		}
		return nil, fmt.Errorf("analysis: internal package %s not loaded", path)
	}
	if from, ok := c.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return c.fallback.Import(path)
}
