module cdl

go 1.22
