// Package obs is a stub of the real internal/obs surface: just enough for
// the analyzer fixtures to typecheck — the Middleware wrapper, the Prom
// metric sinks and the profiling gate.
package obs

import "net/http"

// SlowLog mirrors the real slow-request logger.
type SlowLog struct{}

// Middleware mirrors the real tracing middleware.
func Middleware(next http.Handler, slow *SlowLog) http.Handler { return next }

// ProfilingEnabled mirrors the real profiling gate.
func ProfilingEnabled() bool { return false }

// Labels mirrors the real metric label set.
type Labels map[string]string

// Prom mirrors the real exposition sink; its methods seed the obshygiene
// metric-name analysis.
type Prom struct{}

// Counter records a counter sample.
func (p *Prom) Counter(name, help string, labels Labels, v float64) {}

// Gauge records a gauge sample.
func (p *Prom) Gauge(name, help string, labels Labels, v float64) {}

// Histogram records a histogram snapshot.
func (p *Prom) Histogram(name, help string, labels Labels, bounds []float64, counts []int64, sum float64, count int64) {
}

// AdminMux mirrors the real admin-listener builder. The obs package itself
// is exempt from the mux-wrapping rule (the admin surface must stay
// reachable even when the data path's middleware stack is saturated), so
// these /alertz and /debug/flightz registrations produce no finding.
func AdminMux(routes map[string]http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /alertz", func(w http.ResponseWriter, r *http.Request) {})
	mux.Handle("GET /debug/flightz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	for pattern, h := range routes {
		mux.Handle(pattern, h)
	}
	return mux
}
