// Package core stubs the bit-pinned compute tier: every determinism
// fixture lives here (internal/core is both order-pinned and pure-compute).
package core

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"cdl/internal/obs"
)

// BadWalk ranges over a map where iteration order reaches the output.
func BadWalk(m map[string]int) []string {
	var out []string
	for k, v := range m { // want:determinism "range over map m: iteration order is nondeterministic"
		_ = v
		out = append(out, k)
	}
	return out
}

// GoodWalk collects keys then sorts — the sanctioned map-walk shape.
func GoodWalk(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BadClock reads the wall clock outside any observability gate.
func BadClock() int64 {
	return time.Now().UnixNano() // want:determinism "time.Now in a pure-compute package"
}

// GoodClock reads the clock only under the profiling gate.
func GoodClock() int64 {
	if obs.ProfilingEnabled() {
		return time.Now().UnixNano()
	}
	return 0
}

// GoodClockHoisted uses the hoisted-gate idiom
// (prof := obs.ProfilingEnabled(); if prof { ... }).
func GoodClockHoisted() int64 {
	prof := obs.ProfilingEnabled()
	var t int64
	if prof {
		t = time.Now().UnixNano()
	}
	return t
}

// GoodClockNilGate reads the clock under an observer nil-check.
func GoodClockNilGate(observer func(int64)) {
	if observer != nil {
		observer(time.Now().UnixNano())
	}
}

// AllowedClock is waived inline; the directive must swallow the finding.
func AllowedClock() int64 {
	//cdlvet:allow determinism -- fixture: verifies the inline waiver mechanism
	return time.Now().UnixNano()
}

// BadRand draws from the process-global source.
func BadRand() float64 {
	return rand.Float64() // want:determinism "package-level math/rand call"
}

// GoodRand threads a seeded source.
func GoodRand(r *rand.Rand) float64 {
	return r.Float64()
}

// GoodRandNew constructs a seeded source: the constructors are
// deterministic given their seed.
func GoodRandNew(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// BadFMA fuses rounding and diverges from pinned mul-then-add sums.
func BadFMA(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want:determinism "math.FMA fuses rounding"
}

// GoodMulAdd is the reference shape.
func GoodMulAdd(a, b, c float64) float64 {
	return a*b + c
}

// The directive below is malformed (no "-- reason" tail); the driver must
// surface it rather than silently ignoring it.
//
//cdlvet:allow determinism
var zero = 0
