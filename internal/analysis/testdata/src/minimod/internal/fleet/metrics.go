// Package fleet stubs the router tier: metric-name fixtures for the
// obshygiene Prom-sink analysis.
package fleet

import "cdl/internal/obs"

// emit exercises every metric-name rule against the Prom sinks directly.
func emit(p *obs.Prom) {
	p.Counter("cdl_requests_total", "", nil, 1)
	p.Counter("cdl_requests", "", nil, 1) // want:obshygiene "counter .cdl_requests. must end in _total"
	p.Gauge("cdl_queue_depth", "", nil, 0)
	p.Gauge("cdl_queue_total", "", nil, 0) // want:obshygiene "must not end in _total"
	p.Histogram("cdl_latency_ms", "", nil, nil, nil, 0, 0)
	p.Histogram("cdl_latency", "", nil, nil, nil, 0, 0) // want:obshygiene "must carry a unit suffix"
	p.Counter("CDL_bad__name_total", "", nil, 1)        // want:obshygiene "violates Prometheus naming rules"
	p.Counter("cdl_widget_count", "", nil, 1)           // want:obshygiene "reserved histogram suffix"
}

// observe forwards its name parameter into a histogram sink: the analyzer
// treats it as a sink itself, so its call sites are checked instead.
func observe(p *obs.Prom, name string, sum float64) {
	p.Histogram(name, "", nil, nil, nil, sum, 1)
}

// emitForwarded exercises the forwarding-sink fixpoint.
func emitForwarded(p *obs.Prom, model string) {
	observe(p, "cdl_router_latency_ms", 1)
	observe(p, "cdl_router_latency", 1) // want:obshygiene "must carry a unit suffix"
	observe(p, "cdl_"+model+"_ms", 1)   // want:obshygiene "not a compile-time constant"
}
