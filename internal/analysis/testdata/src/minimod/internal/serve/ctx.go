// Context-propagation (ctxflow) and goroutine-hygiene (goctx) fixtures.
package serve

import (
	"context"
	"net/http"
)

// BadBackground mints a fresh root below a serving root.
func BadBackground(ctx context.Context) context.Context {
	return context.Background() // want:ctxflow "context.Background"
}

// BadTODO reaches for TODO with a ctx in scope.
func BadTODO(ctx context.Context) context.Context {
	return context.TODO() // want:ctxflow "context.TODO"
}

// BadRequest builds an outbound request without the in-scope context.
func BadRequest(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want:ctxflow "http.NewRequest below a serving root"
}

// BadCapture: the literal inherits the enclosing scope's ctx, so a fresh
// root inside it is still a violation.
func BadCapture(ctx context.Context) func() context.Context {
	return func() context.Context {
		return context.Background() // want:ctxflow "context.Background"
	}
}

// GoodRequest threads the context.
func GoodRequest(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, "GET", url, nil)
}

// Root has no context anywhere in scope: minting one is what makes it a
// root.
func Root() context.Context {
	return context.Background()
}

// BadSpawn captures ctx but never observes its cancellation.
func BadSpawn(ctx context.Context, work func()) {
	go func() { // want:goctx "goroutine captures a context but never observes it"
		_ = ctx
		work()
	}()
}

// GoodSpawnSelect observes cancellation.
func GoodSpawnSelect(ctx context.Context, work func()) {
	go func() {
		select {
		case <-ctx.Done():
		default:
			work()
		}
	}()
}

// GoodSpawnDelegate hands the context on to a callee.
func GoodSpawnDelegate(ctx context.Context, work func(context.Context)) {
	go func() {
		work(ctx)
	}()
}

// GoodSpawnPlain never touches a context: lifecycle is managed elsewhere.
func GoodSpawnPlain(work func()) {
	go func() { work() }()
}
