// Lock-discipline fixtures: the `// guarded by mu` annotation and its
// sanctioned exemptions.
package serve

import "sync"

// counter is the lockcheck fixture struct.
type counter struct {
	mu   sync.Mutex
	hits int // guarded by mu
}

// Good locks before touching the guarded field.
func (c *counter) Good() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
}

// Bad touches the guarded field without the lock.
func (c *counter) Bad() int {
	return c.hits // want:lockcheck "counter.hits is guarded by mu but accessed without"
}

// BadGoroutine takes the lock in the outer function, but the goroutine
// body is a fresh lock scope and must acquire the mutex itself.
func (c *counter) BadGoroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.hits++ // want:lockcheck "counter.hits is guarded by mu"
	}()
}

// readLocked relies on the *Locked naming convention.
func (c *counter) readLocked() int { return c.hits }

// peek reports hits. Callers hold mu.
func (c *counter) peek() int { return c.hits }

// fresh constructs a new counter: values no other goroutine can see yet
// need no lock.
func fresh() *counter {
	c := &counter{}
	c.hits = 1
	return c
}
