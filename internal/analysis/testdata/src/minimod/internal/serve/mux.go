// Observability-hygiene fixtures: mux wrapping.
package serve

import (
	"net/http"

	"cdl/internal/obs"
)

// wrappedServer wires its mux through obs.Middleware.
type wrappedServer struct {
	mux     *http.ServeMux
	handler http.Handler
}

func newWrappedServer(slow *obs.SlowLog) *wrappedServer {
	s := &wrappedServer{mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {})
	s.handler = obs.Middleware(s.mux, slow)
	return s
}

// nakedServer registers handlers but never wraps the mux.
type nakedServer struct {
	mux *http.ServeMux
}

func newNakedServer() *nakedServer {
	s := &nakedServer{mux: http.NewServeMux()}
	s.mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {}) // want:obshygiene "never wrapped by obs.Middleware"
	return s
}
