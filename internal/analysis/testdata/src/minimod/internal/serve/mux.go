// Observability-hygiene fixtures: mux wrapping.
package serve

import (
	"net/http"

	"cdl/internal/obs"
)

// wrappedServer wires its mux through obs.Middleware.
type wrappedServer struct {
	mux     *http.ServeMux
	handler http.Handler
}

func newWrappedServer(slow *obs.SlowLog) *wrappedServer {
	s := &wrappedServer{mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {})
	s.mux.HandleFunc("GET /alertz", func(w http.ResponseWriter, r *http.Request) {})
	s.mux.Handle("GET /debug/flightz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	s.handler = obs.Middleware(s.mux, slow)
	return s
}

// nakedServer registers handlers but never wraps the mux.
type nakedServer struct {
	mux *http.ServeMux
}

func newNakedServer() *nakedServer {
	s := &nakedServer{mux: http.NewServeMux()}
	s.mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {}) // want:obshygiene "never wrapped by obs.Middleware"
	return s
}

// nakedFlightServer exposes the flight-recorder and alert query surfaces
// on a data mux without the middleware wrap — the exact regression the
// obshygiene rule exists to catch on serving tiers.
type nakedFlightServer struct {
	mux *http.ServeMux
}

func newNakedFlightServer() *nakedFlightServer {
	s := &nakedFlightServer{mux: http.NewServeMux()}
	s.mux.Handle("GET /debug/flightz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})) // want:obshygiene "never wrapped by obs.Middleware"
	s.mux.HandleFunc("GET /alertz", func(w http.ResponseWriter, r *http.Request) {})
	return s
}
