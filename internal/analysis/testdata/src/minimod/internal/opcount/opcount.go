// Package opcount stubs the op-accounting surface: LayerOps's type switch
// is the exhaustiveness target.
package opcount

import "cdl/internal/nn"

// LayerOps costs one layer; the type switch must cover every Layer
// implementation in the module.
func LayerOps(l nn.Layer) float64 {
	switch l.(type) {
	case *nn.Good:
		return 1
	case *nn.NoBatch:
		return 1
	default:
		panic("opcount: unknown layer")
	}
}
