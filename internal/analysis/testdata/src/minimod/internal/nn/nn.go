// Package nn stubs the layer abstraction: the Layer/BatchLayer surfaces
// plus three fixture implementations exercising the exhaustive analyzer.
package nn

// Layer is the minimal layer surface.
type Layer interface {
	Name() string
	Forward(x []float64) []float64
}

// BatchLayer is the batched fast-path surface.
type BatchLayer interface {
	Layer
	ForwardBatch(xs [][]float64) [][]float64
}

// Good implements every required surface: Layer, BatchLayer and an
// opcount.LayerOps case.
type Good struct{}

// Name implements Layer.
func (*Good) Name() string { return "good" }

// Forward implements Layer.
func (*Good) Forward(x []float64) []float64 { return x }

// ForwardBatch implements BatchLayer.
func (*Good) ForwardBatch(xs [][]float64) [][]float64 { return xs }

// NoBatch implements Layer but not BatchLayer (it is covered by the
// opcount switch, so only the fast-path finding fires).
type NoBatch struct{} // want:exhaustive "NoBatch implements nn.Layer but not nn.BatchLayer"

// Name implements Layer.
func (*NoBatch) Name() string { return "nobatch" }

// Forward implements Layer.
func (*NoBatch) Forward(x []float64) []float64 { return x }

// NoOps implements both interfaces but is missing from opcount.LayerOps.
type NoOps struct{} // want:exhaustive "NoOps implements nn.Layer but is not handled in opcount.LayerOps"

// Name implements Layer.
func (*NoOps) Name() string { return "noops" }

// Forward implements Layer.
func (*NoOps) Forward(x []float64) []float64 { return x }

// ForwardBatch implements BatchLayer.
func (*NoOps) ForwardBatch(xs [][]float64) [][]float64 { return xs }
