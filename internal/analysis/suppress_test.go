package analysis

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"testing"
)

func TestAllowDirectives(t *testing.T) {
	m := &Module{Dir: "/m", Fset: token.NewFileSet(), allow: map[string]map[int][]string{}}
	src := `package p

//cdlvet:allow determinism -- justified
var a = 1

//cdlvet:allow lockcheck,goctx -- two analyzers, one waiver
var b = 2
`
	f, err := parser.ParseFile(m.Fset, "/m/x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	m.scanDirectives("/m/x.go", f)

	// Waived on the directive's own line and the line below it.
	if !m.allowed(Finding{Analyzer: "determinism", File: "x.go", Line: 4}) {
		t.Error("directive on the line above did not waive the finding")
	}
	if !m.allowed(Finding{Analyzer: "determinism", File: "x.go", Line: 3}) {
		t.Error("directive on the finding's own line did not waive it")
	}
	if !m.allowed(Finding{Analyzer: "goctx", File: "x.go", Line: 7}) {
		t.Error("comma-separated analyzer list not honored")
	}
	if m.allowed(Finding{Analyzer: "ctxflow", File: "x.go", Line: 4}) {
		t.Error("waiver leaked to an analyzer it does not name")
	}
	if m.allowed(Finding{Analyzer: "determinism", File: "x.go", Line: 6}) {
		t.Error("waiver leaked to an unrelated line")
	}
	if got := m.MalformedDirectives(); len(got) != 0 {
		t.Errorf("well-formed directives reported as malformed: %v", got)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	findings := []Finding{
		{Analyzer: "determinism", File: "a.go", Line: 3, Col: 2, Message: "msg one"},
		{Analyzer: "lockcheck", File: "b.go", Line: 9, Col: 1, Message: "msg two"},
	}
	if err := WriteBaseline(path, findings); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d baseline entries, want 2", len(entries))
	}

	// One finding fixed, one new: the fixed entry goes stale, the new
	// finding stays fresh, the surviving match is baselined.
	current := []Finding{
		findings[0],
		{Analyzer: "goctx", File: "c.go", Line: 1, Col: 1, Message: "brand new"},
	}
	fresh, baselined, stale := ApplyBaseline(current, entries)
	if len(fresh) != 1 || fresh[0].Analyzer != "goctx" {
		t.Errorf("fresh = %v, want the goctx finding", fresh)
	}
	if len(baselined) != 1 || baselined[0].Analyzer != "determinism" {
		t.Errorf("baselined = %v, want the determinism finding", baselined)
	}
	if len(stale) != 1 || stale[0].Analyzer != "lockcheck" {
		t.Errorf("stale = %v, want the lockcheck entry", stale)
	}
}

func TestLoadBaselineMissing(t *testing.T) {
	entries, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || entries != nil {
		t.Fatalf("missing baseline: got (%v, %v), want (nil, nil)", entries, err)
	}
}

func TestMatchPatterns(t *testing.T) {
	cases := []struct {
		patterns []string
		rel      string
		want     bool
	}{
		{nil, "internal/nn", true},
		{[]string{"./..."}, "internal/nn", true},
		{[]string{"./..."}, "", true},
		{[]string{"./internal/..."}, "internal/serve", true},
		{[]string{"./internal/..."}, "cmd/cdlvet", false},
		{[]string{"./internal/serve"}, "internal/serve", true},
		{[]string{"./internal/serve"}, "internal/serve2", false},
		{[]string{"./internal/serve/..."}, "internal/serve", true},
		{[]string{"./cmd/cdlvet", "./internal/nn"}, "internal/nn", true},
	}
	for _, c := range cases {
		if got := matchPatterns(c.patterns, c.rel); got != c.want {
			t.Errorf("matchPatterns(%v, %q) = %v, want %v", c.patterns, c.rel, got, c.want)
		}
	}
}
