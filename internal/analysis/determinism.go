package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerDeterminism enforces the bit-identical output contract of the
// pinned-summation packages — the exactly-one-exit rule's fast path, model
// serialization and the wire format are all golden-pinned byte for byte, so
// nothing in them may depend on map iteration order or wall-clock reads.
//
// In the order-pinned packages it flags `range` over a map: iteration order
// is randomized per run, so any map walk that can reach output bytes,
// float accumulation order or serialized fields is a reproducibility bug.
// The one sanctioned shape is collect-keys-then-sort (append the key to a
// slice that is later passed to sort/slices in the same function), which
// the pass recognizes and admits.
//
// In the pure-compute packages it additionally flags:
//   - time.Now outside an observability gate (an enclosing `if` on an
//     *Enabled() probe or a nil-check of an observer/tracer hook) — the
//     repo's convention for timestamps that exist only for profiling;
//   - package-level math/rand calls (the process-global source; seeded
//     *rand.Rand values passed in by the caller stay legal);
//   - math.FMA, whose fused rounding diverges from the reference
//     mul-then-add summation the differential harnesses pin.
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "map iteration, wall-clock and global randomness in bit-pinned packages",
	Run:  runDeterminism,
}

// detOrderRels are packages whose outputs (serialized bytes, report text,
// accumulated floats) must be identical run to run.
var detOrderRels = []string{
	"internal/nn",
	"internal/core",
	"internal/modelio",
	"internal/edgecloud/wire",
	"internal/energy",
	"internal/experiments",
	"internal/fixed",
	"internal/hw",
	"internal/linclass",
	"internal/opcount",
	"internal/stats",
	"internal/tensor",
}

// detPureRels are the pure-compute subset where wall-clock and global
// randomness are also banned.
var detPureRels = []string{
	"internal/nn",
	"internal/core",
	"internal/modelio",
	"internal/edgecloud/wire",
	"internal/fixed",
	"internal/linclass",
	"internal/opcount",
	"internal/tensor",
}

func runDeterminism(p *Pass) {
	order := hasRelPrefix(p.Pkg, detOrderRels...)
	pure := hasRelPrefix(p.Pkg, detPureRels...)
	if !order && !pure {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch v := n.(type) {
			case *ast.RangeStmt:
				if !order {
					return true
				}
				tv, ok := info.Types[v.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if collectThenSort(info, v, enclosingFunc(stack)) {
					return true
				}
				p.Reportf(v.Pos(), "range over map %s: iteration order is nondeterministic in an output-pinned package (collect keys and sort, or range over a slice)", exprLabel(p.Mod.Fset, v.X))
			case *ast.CallExpr:
				if !pure {
					return true
				}
				switch {
				case pkgFunc(info, v, "time", "Now"):
					if !obsGated(info, stack) {
						p.Reportf(v.Pos(), "time.Now in a pure-compute package outside an observability gate (wrap in `if obs.ProfilingEnabled()` / `if observer != nil`, or hoist the timestamp to the caller)")
					}
				case globalRandCall(info, v):
					p.Reportf(v.Pos(), "package-level math/rand call uses the process-global source; thread a seeded *rand.Rand instead")
				case pkgFunc(info, v, "math", "FMA"):
					p.Reportf(v.Pos(), "math.FMA fuses rounding and diverges from the pinned mul-then-add summation order")
				}
			}
			return true
		})
	}
}

// globalRandCall reports a call to a math/rand package-level function other
// than the constructors (New, NewSource, NewZipf), which are deterministic
// given their seed arguments.
func globalRandCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "math/rand" {
		return false
	}
	if _, isPkg := info.Uses[baseIdent(sel.X)].(*types.PkgName); !isPkg {
		return false // method on a seeded *rand.Rand
	}
	switch obj.Name() {
	case "New", "NewSource", "NewZipf":
		return false
	}
	return true
}

// obsGated reports whether the node (whose ancestor stack is given) sits
// inside an if-statement that gates observability: a condition mentioning a
// call to some *Enabled() probe, a nil comparison (observer hooks), or a
// bare bool identifier assigned from an *Enabled() call in the enclosing
// function.
func obsGated(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if condIsObsGate(info, ifStmt.Cond, enclosingFunc(stack[:i])) {
			return true
		}
	}
	return false
}

func condIsObsGate(info *types.Info, cond ast.Expr, fn ast.Node) bool {
	gate := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if callee := calleeOf(info, v); callee != nil && strings.HasSuffix(callee.Name(), "Enabled") {
				gate = true
			}
		case *ast.BinaryExpr:
			if isNilIdent(v.X) || isNilIdent(v.Y) {
				gate = true
			}
		case *ast.Ident:
			if fn != nil && identAssignedFromEnabled(info, v, fn) {
				gate = true
			}
		}
		return !gate
	})
	return gate
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// identAssignedFromEnabled reports whether id names a variable assigned
// somewhere in fn from a call to an *Enabled() function — the
// `prof := obs.ProfilingEnabled(); if prof { ... }` idiom.
func identAssignedFromEnabled(info *types.Info, id *ast.Ident, fn ast.Node) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	body := funcBody(fn)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || (info.Defs[lid] != obj && info.Uses[lid] != obj) {
				continue
			}
			if i < len(as.Rhs) {
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
					if callee := calleeOf(info, call); callee != nil && strings.HasSuffix(callee.Name(), "Enabled") {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// collectThenSort admits the one sanctioned map walk: the body only appends
// the key to a slice that the same function later sorts.
func collectThenSort(info *types.Info, rng *ast.RangeStmt, fn ast.Node) bool {
	if rng.Value != nil || rng.Key == nil || len(rng.Body.List) != 1 {
		return false
	}
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	if arg0, ok := call.Args[0].(*ast.Ident); !ok || arg0.Name != dst.Name {
		return false
	}
	if arg1, ok := call.Args[1].(*ast.Ident); !ok || arg1.Name != keyID.Name {
		return false
	}
	// The collected slice must be sorted later in the same function.
	dstObj := info.Uses[dst]
	if dstObj == nil {
		dstObj = info.Defs[dst]
	}
	body := funcBody(fn)
	if body == nil || dstObj == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if pp := callee.Pkg().Path(); pp != "sort" && pp != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && (info.Uses[id] == dstObj || info.Defs[id] == dstObj) {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}
