package analysis

import (
	"go/ast"
)

// AnalyzerGoCtx enforces goroutine lifecycle hygiene in the serving tiers:
// a `go func() { ... }()` that captures a request-scoped context.Context
// must either observe its cancellation (ctx.Done(), ctx.Err(),
// ctx.Deadline()) or hand the context on to a callee that does. A goroutine
// that captures ctx but never looks at it outlives cancelled requests —
// the slow leak behind every "zero-drop hot-swap" regression that only a
// -race storm with perfect timing would catch.
//
// Goroutines that never touch a context are out of scope (they are
// lifecycle-managed some other way, e.g. by the pool's stop channel), as
// are `go someFunc(ctx)` statements — passing the context is delegation.
var AnalyzerGoCtx = &Analyzer{
	Name: "goctx",
	Doc:  "goroutines capturing a request context without observing Done()",
	Run:  runGoCtx,
}

var goCtxRels = []string{"internal/serve", "internal/fleet", "internal/edgecloud"}

func runGoCtx(p *Pass) {
	if !hasRelPrefix(p.Pkg, goCtxRels...) {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			goStmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := goStmt.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // go f(ctx): delegation
			}
			usesCtx := false
			respectsCtx := false
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				switch v := m.(type) {
				case *ast.Ident:
					if obj := info.Uses[v]; obj != nil && isContextType(obj.Type()) {
						usesCtx = true
					}
				case *ast.CallExpr:
					if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
						if tv, ok := info.Types[sel.X]; ok && isContextType(tv.Type) {
							switch sel.Sel.Name {
							case "Done", "Err", "Deadline":
								respectsCtx = true
							}
						}
					}
					for _, arg := range v.Args {
						if tv, ok := info.Types[arg]; ok && isContextType(tv.Type) {
							respectsCtx = true // delegated to a callee
						}
					}
				}
				return true
			})
			// The literal's own context parameters (passed via the go
			// call's arguments) count the same as captures.
			for _, arg := range goStmt.Call.Args {
				if tv, ok := info.Types[arg]; ok && isContextType(tv.Type) {
					usesCtx = true
				}
			}
			if usesCtx && !respectsCtx {
				p.Reportf(goStmt.Pos(), "goroutine captures a context but never observes it (no Done()/Err() and not passed on): it will outlive cancelled requests")
			}
			return true
		})
	}
}
