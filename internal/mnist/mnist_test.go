package mnist

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateBasics(t *testing.T) {
	imgs, err := Generate(GenConfig{N: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 100 {
		t.Fatalf("got %d images, want 100", len(imgs))
	}
	for i, im := range imgs {
		if len(im.Pixels) != Side*Side {
			t.Fatalf("image %d: %d pixels", i, len(im.Pixels))
		}
		if im.Label < 0 || im.Label >= Classes {
			t.Fatalf("image %d: label %d", i, im.Label)
		}
		if im.Difficulty < 0 || im.Difficulty > 1 {
			t.Fatalf("image %d: difficulty %v", i, im.Difficulty)
		}
		for j, p := range im.Pixels {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("image %d pixel %d out of range: %v", i, j, p)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenConfig{N: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{N: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Label != b[i].Label || a[i].Difficulty != b[i].Difficulty {
			t.Fatalf("image %d metadata differs across same-seed runs", i)
		}
		for j := range a[i].Pixels {
			if a[i].Pixels[j] != b[i].Pixels[j] {
				t.Fatalf("image %d pixel %d differs across same-seed runs", i, j)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(GenConfig{N: 10, Seed: 1})
	b, _ := Generate(GenConfig{N: 10, Seed: 2})
	same := true
	for i := range a {
		for j := range a[i].Pixels {
			if a[i].Pixels[j] != b[i].Pixels[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateBalanced(t *testing.T) {
	imgs, err := Generate(GenConfig{N: 200, Seed: 3, BalanceClasses: true})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, Classes)
	for _, im := range imgs {
		counts[im.Label]++
	}
	for c, n := range counts {
		if n != 20 {
			t.Errorf("class %d count %d, want 20", c, n)
		}
	}
}

func TestGenerateBadConfig(t *testing.T) {
	if _, err := Generate(GenConfig{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Generate(GenConfig{N: 10, NoiseLevel: 2}); err == nil {
		t.Error("NoiseLevel=2 accepted")
	}
	if _, err := Generate(GenConfig{N: 10, DifficultyExponent: -1}); err == nil {
		t.Error("negative DifficultyExponent accepted")
	}
}

func TestDifficultyDistributionSkewsEasy(t *testing.T) {
	imgs, err := Generate(GenConfig{N: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	easy, hard := 0, 0
	for _, im := range imgs {
		if im.Difficulty < 0.3 {
			easy++
		}
		if im.Difficulty > 0.7 {
			hard++
		}
	}
	if easy <= hard {
		t.Errorf("difficulty not skewed easy: %d easy vs %d hard (CDL premise needs mostly-easy inputs)", easy, hard)
	}
}

func TestClassHardnessOrdering(t *testing.T) {
	imgs, err := Generate(GenConfig{N: 5000, Seed: 6, BalanceClasses: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]float64, Classes)
	n := make([]int, Classes)
	for _, im := range imgs {
		sum[im.Label] += im.Difficulty
		n[im.Label]++
	}
	mean1 := sum[1] / float64(n[1])
	mean5 := sum[5] / float64(n[5])
	if mean1 >= mean5 {
		t.Errorf("digit 1 mean difficulty %.3f >= digit 5 %.3f; paper ordering requires 1 easiest, 5 hardest", mean1, mean5)
	}
	for c := 0; c < Classes; c++ {
		if c != 1 && sum[c]/float64(n[c]) < mean1 {
			t.Errorf("digit %d easier than digit 1 on average", c)
		}
	}
}

func TestImagesHaveInk(t *testing.T) {
	imgs, err := Generate(GenConfig{N: 100, Seed: 7, BalanceClasses: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, im := range imgs {
		ink := 0.0
		for _, p := range im.Pixels {
			ink += p
		}
		if ink < 10 {
			t.Errorf("image %d (label %d) nearly blank: total ink %.2f", i, im.Label, ink)
		}
		if ink > float64(Side*Side)*0.7 {
			t.Errorf("image %d (label %d) nearly solid: total ink %.2f", i, im.Label, ink)
		}
	}
}

func TestTensorSharesPixels(t *testing.T) {
	imgs, _ := Generate(GenConfig{N: 1, Seed: 8})
	tt := imgs[0].Tensor()
	if got := tt.Shape(); got[0] != 1 || got[1] != Side || got[2] != Side {
		t.Fatalf("Tensor shape %v", got)
	}
	tt.Data[0] = 0.123
	if imgs[0].Pixels[0] != 0.123 {
		t.Error("Tensor should share pixel storage")
	}
	c := imgs[0].Clone()
	c.Pixels[0] = 0.5
	if imgs[0].Pixels[0] == 0.5 {
		t.Error("Clone should not share pixel storage")
	}
}

func TestToSamplesAndSplitByClass(t *testing.T) {
	imgs, _ := Generate(GenConfig{N: 30, Seed: 9, BalanceClasses: true})
	samples := ToSamples(imgs)
	if len(samples) != 30 {
		t.Fatalf("ToSamples len %d", len(samples))
	}
	for i := range samples {
		if samples[i].Label != imgs[i].Label {
			t.Fatal("label mismatch")
		}
	}
	buckets := SplitByClass(imgs)
	total := 0
	for c, idxs := range buckets {
		for _, i := range idxs {
			if imgs[i].Label != c {
				t.Fatal("SplitByClass misfiled an image")
			}
		}
		total += len(idxs)
	}
	if total != 30 {
		t.Fatalf("SplitByClass total %d", total)
	}
}

func TestIDXRoundTrip(t *testing.T) {
	imgs, _ := Generate(GenConfig{N: 25, Seed: 10, BalanceClasses: true})
	var ibuf, lbuf bytes.Buffer
	if err := WriteIDXImages(&ibuf, imgs); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXLabels(&lbuf, imgs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIDXImages(&ibuf)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := ReadIDXLabels(&lbuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := MergeLabels(back, labels); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(imgs) {
		t.Fatalf("round trip count %d != %d", len(back), len(imgs))
	}
	for i := range back {
		if back[i].Label != imgs[i].Label {
			t.Fatalf("label %d mismatch", i)
		}
		for j := range back[i].Pixels {
			if math.Abs(back[i].Pixels[j]-imgs[i].Pixels[j]) > 1.0/255+1e-9 {
				t.Fatalf("pixel %d/%d quantization error too large: %v vs %v",
					i, j, back[i].Pixels[j], imgs[i].Pixels[j])
			}
		}
	}
}

func TestIDXBadMagic(t *testing.T) {
	if _, err := ReadIDXImages(bytes.NewReader([]byte{0, 0, 8, 1, 0, 0, 0, 0, 0, 0, 0, 28, 0, 0, 0, 28})); err == nil {
		t.Error("bad image magic accepted")
	}
	if _, err := ReadIDXLabels(bytes.NewReader([]byte{0, 0, 8, 3, 0, 0, 0, 0})); err == nil {
		t.Error("bad label magic accepted")
	}
}

func TestIDXTruncated(t *testing.T) {
	imgs, _ := Generate(GenConfig{N: 2, Seed: 11})
	var buf bytes.Buffer
	if err := WriteIDXImages(&buf, imgs); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadIDXImages(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestMergeLabelsMismatch(t *testing.T) {
	imgs, _ := Generate(GenConfig{N: 3, Seed: 12})
	if err := MergeLabels(imgs, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := MergeLabels(imgs, []int{1, 2, 99}); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestRender(t *testing.T) {
	imgs, _ := Generate(GenConfig{N: 1, Seed: 13, BalanceClasses: true})
	s := Render(imgs[0])
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != Side {
		t.Fatalf("Render rows %d, want %d", len(lines), Side)
	}
	for _, l := range lines {
		if len(l) != Side {
			t.Fatalf("Render row width %d, want %d", len(l), Side)
		}
	}
	if !strings.ContainsAny(s, "#%@*+") {
		t.Error("Render contains no dark ink characters")
	}
}

func TestRenderSideBySide(t *testing.T) {
	imgs, _ := Generate(GenConfig{N: 3, Seed: 14})
	s := RenderSideBySide(imgs, 2)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != Side {
		t.Fatalf("rows %d", len(lines))
	}
	wantWidth := 3*Side + 2*2
	if len(lines[0]) != wantWidth {
		t.Fatalf("width %d, want %d", len(lines[0]), wantWidth)
	}
	if RenderSideBySide(nil, 1) != "" {
		t.Error("empty gallery should render empty")
	}
}

func TestGenerateSplitDisjointSeeds(t *testing.T) {
	tr, te, err := GenerateSplit(40, 20, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 40 || len(te) != 20 {
		t.Fatalf("split sizes %d/%d", len(tr), len(te))
	}
	// Train and test must not be pixel-identical datasets.
	identical := true
	for j := range tr[0].Pixels {
		if tr[0].Pixels[j] != te[0].Pixels[j] {
			identical = false
			break
		}
	}
	if identical {
		t.Error("train/test splits look identical; seeds not separated")
	}
}

// Property: every generated pixel stays in [0,1] across configs.
func TestQuickPixelRange(t *testing.T) {
	f := func(seed int64, noiseRaw uint8) bool {
		noise := float64(noiseRaw%100) / 200 // 0..0.495
		imgs, err := Generate(GenConfig{N: 3, Seed: seed, NoiseLevel: noise})
		if err != nil {
			return noise == 0 // NoiseLevel 0 means default, never errors
		}
		for _, im := range imgs {
			for _, p := range im.Pixels {
				if p < 0 || p > 1 || math.IsNaN(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLoadDirRoundTrip(t *testing.T) {
	// Writing our synthetic dataset as IDX files and loading them through
	// the real-MNIST path must reproduce labels and pixels (up to uint8
	// quantization) — this is the code path a user with the genuine LeCun
	// files exercises.
	dir := t.TempDir()
	trainImgs, testImgs, err := GenerateSplit(12, 8, 21)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, imgs []Image, labels bool) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if labels {
			err = WriteIDXLabels(f, imgs)
		} else {
			err = WriteIDXImages(f, imgs)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	write("train-images-idx3-ubyte", trainImgs, false)
	write("train-labels-idx1-ubyte", trainImgs, true)
	write("t10k-images-idx3-ubyte", testImgs, false)
	write("t10k-labels-idx1-ubyte", testImgs, true)

	gotTrain, gotTest, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotTrain) != 12 || len(gotTest) != 8 {
		t.Fatalf("loaded %d/%d images", len(gotTrain), len(gotTest))
	}
	for i := range gotTrain {
		if gotTrain[i].Label != trainImgs[i].Label {
			t.Fatalf("train label %d mismatch", i)
		}
		for j := range gotTrain[i].Pixels {
			if math.Abs(gotTrain[i].Pixels[j]-trainImgs[i].Pixels[j]) > 1.0/255+1e-9 {
				t.Fatalf("train pixel %d/%d beyond quantization error", i, j)
			}
		}
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
}
