package mnist

import (
	"fmt"
	"math"
	"math/rand"
)

// GenConfig controls the synthetic digit generator. Zero values take the
// documented defaults via Normalize.
type GenConfig struct {
	// N is the number of images to generate.
	N int
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
	// NoiseLevel is the standard deviation of additive pixel noise at
	// difficulty 1 (default 0.12).
	NoiseLevel float64
	// MaxRotate is the rotation range in radians at difficulty 1
	// (default 0.45 ≈ 26°).
	MaxRotate float64
	// DifficultyExponent shapes the difficulty distribution: difficulty is
	// drawn as U^e, so larger e skews the dataset easier. Default 1.6,
	// which makes the bulk of inputs easy with a hard tail — the
	// distribution CDL exploits.
	DifficultyExponent float64
	// BalanceClasses makes the label sequence a repeating 0..9 cycle
	// instead of uniform draws.
	BalanceClasses bool
}

// Normalize fills zero fields with defaults and validates the rest.
func (c *GenConfig) Normalize() error {
	if c.N <= 0 {
		return fmt.Errorf("mnist: GenConfig.N=%d", c.N)
	}
	if c.NoiseLevel == 0 {
		c.NoiseLevel = 0.18
	}
	if c.NoiseLevel < 0 || c.NoiseLevel > 1 {
		return fmt.Errorf("mnist: NoiseLevel=%v", c.NoiseLevel)
	}
	if c.MaxRotate == 0 {
		c.MaxRotate = 0.55
	}
	if c.DifficultyExponent == 0 {
		c.DifficultyExponent = 1.2
	}
	if c.DifficultyExponent < 0 {
		return fmt.Errorf("mnist: DifficultyExponent=%v", c.DifficultyExponent)
	}
	return nil
}

// Generate synthesizes cfg.N labelled digit images. It is deterministic
// for a fixed config.
func Generate(cfg GenConfig) ([]Image, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	variants := glyphVariants()
	imgs := make([]Image, cfg.N)
	for i := range imgs {
		label := rng.Intn(Classes)
		if cfg.BalanceClasses {
			label = i % Classes
		}
		imgs[i] = renderDigit(label, variants[label], rng, &cfg)
	}
	return imgs, nil
}

// GenerateSplit produces a train and a test set from two derived seeds, the
// usual 60k/10k style split at configurable sizes.
func GenerateSplit(trainN, testN int, seed int64) (trainImgs, testImgs []Image, err error) {
	trainImgs, err = Generate(GenConfig{N: trainN, Seed: seed, BalanceClasses: true})
	if err != nil {
		return nil, nil, err
	}
	testImgs, err = Generate(GenConfig{N: testN, Seed: seed + 7919, BalanceClasses: true})
	if err != nil {
		return nil, nil, err
	}
	return trainImgs, testImgs, nil
}

// renderDigit draws one randomized instance of the digit's glyph.
func renderDigit(label int, variants []glyph, rng *rand.Rand, cfg *GenConfig) Image {
	// Difficulty draw: U^e keeps most samples easy; the per-class hardness
	// multiplier shifts each digit's whole distribution.
	difficulty := math.Pow(rng.Float64(), cfg.DifficultyExponent)
	d := difficulty * classHardness[label]

	g := variants[rng.Intn(len(variants))]

	// Affine warp parameters scale with effective difficulty d.
	rot := (rng.Float64()*2 - 1) * cfg.MaxRotate * d
	scaleX := 1 + (rng.Float64()*2-1)*0.30*d
	scaleY := 1 + (rng.Float64()*2-1)*0.30*d
	shear := (rng.Float64()*2 - 1) * 0.50 * d
	dx := (rng.Float64()*2 - 1) * 0.15 * d
	dy := (rng.Float64()*2 - 1) * 0.15 * d

	// Stroke appearance.
	width := 0.040 + 0.018*rng.Float64() + 0.028*d*rng.Float64()
	wavAmp := 0.022 * d * rng.Float64() * 2
	wavFreq := 2 + rng.Float64()*4
	wavPhase := rng.Float64() * 2 * math.Pi

	cos, sin := math.Cos(rot), math.Sin(rot)
	warp := func(p pt) pt {
		// center, scale/shear/rotate, translate, un-center
		x := (p.X - 0.5) * scaleX
		y := (p.Y - 0.5) * scaleY
		x += shear * y
		xr := x*cos - y*sin
		yr := x*sin + y*cos
		return pt{X: xr + 0.5 + dx, Y: yr + 0.5 + dy}
	}

	// Build the warped, wavy segment list.
	type seg struct{ a, b pt }
	var segs []seg
	arcPos := 0.0
	for _, st := range g {
		prev := pt{}
		for i, p := range st {
			q := warp(p)
			arcPos += 0.13
			q.X += wavAmp * math.Sin(wavFreq*arcPos+wavPhase)
			q.Y += wavAmp * math.Cos(wavFreq*arcPos*0.8+wavPhase)
			if i > 0 {
				segs = append(segs, seg{prev, q})
			}
			prev = q
		}
	}

	// Rasterize: intensity from distance-to-nearest-segment with a soft
	// falloff, approximating pen pressure and antialiasing.
	pix := make([]float64, Side*Side)
	aa := 0.030 // antialias band in glyph units
	for py := 0; py < Side; py++ {
		for px := 0; px < Side; px++ {
			gx := (float64(px) + 0.5) / Side
			gy := (float64(py) + 0.5) / Side
			best := math.Inf(1)
			for _, s := range segs {
				if dseg := distPointSeg(gx, gy, s.a, s.b); dseg < best {
					best = dseg
				}
			}
			v := 1 - (best-width)/aa
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			pix[py*Side+px] = v
		}
	}

	// Slight blur couples neighbouring pixels like optical scanning does.
	pix = blur3x3(pix, 0.30+0.35*d)

	// Additive noise, scaled by difficulty.
	sigma := cfg.NoiseLevel * (0.25 + 0.75*d)
	for i := range pix {
		pix[i] += rng.NormFloat64() * sigma
		if pix[i] < 0 {
			pix[i] = 0
		}
		if pix[i] > 1 {
			pix[i] = 1
		}
	}

	return Image{Pixels: pix, Label: label, Difficulty: d}
}

// distPointSeg returns the Euclidean distance from (x,y) to segment ab.
func distPointSeg(x, y float64, a, b pt) float64 {
	vx, vy := b.X-a.X, b.Y-a.Y
	wx, wy := x-a.X, y-a.Y
	den := vx*vx + vy*vy
	t := 0.0
	if den > 0 {
		t = (wx*vx + wy*vy) / den
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
	}
	dx := x - (a.X + t*vx)
	dy := y - (a.Y + t*vy)
	return math.Sqrt(dx*dx + dy*dy)
}

// blur3x3 applies one pass of a 3×3 binomial-ish blur with the given
// strength in [0,1]; strength 0 returns the input unchanged.
func blur3x3(pix []float64, strength float64) []float64 {
	if strength <= 0 {
		return pix
	}
	out := make([]float64, len(pix))
	for y := 0; y < Side; y++ {
		for x := 0; x < Side; x++ {
			sum := 0.0
			cnt := 0.0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					nx, ny := x+dx, y+dy
					if nx < 0 || nx >= Side || ny < 0 || ny >= Side {
						continue
					}
					sum += pix[ny*Side+nx]
					cnt++
				}
			}
			center := pix[y*Side+x]
			out[y*Side+x] = center*(1-strength) + strength*(sum/cnt)
		}
	}
	return out
}
