package mnist

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// GenConfig controls the synthetic digit generator. Zero values take the
// documented defaults via Normalize.
type GenConfig struct {
	// N is the number of images to generate.
	N int
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
	// NoiseLevel is the standard deviation of additive pixel noise at
	// difficulty 1 (default 0.12).
	NoiseLevel float64
	// MaxRotate is the rotation range in radians at difficulty 1
	// (default 0.45 ≈ 26°).
	MaxRotate float64
	// DifficultyExponent shapes the difficulty distribution: difficulty is
	// drawn as U^e, so larger e skews the dataset easier. Default 1.6,
	// which makes the bulk of inputs easy with a hard tail — the
	// distribution CDL exploits.
	DifficultyExponent float64
	// BalanceClasses makes the label sequence a repeating 0..9 cycle
	// instead of uniform draws.
	BalanceClasses bool
	// Groups, when non-empty, draws each label from one of these digit
	// groups instead of the full class set: first a group is chosen (by
	// GroupWeights, or uniformly), then a digit uniformly within it. This
	// skews traffic toward class subsets — the workload shape that
	// exercises branch routing in a class-grouped cascade. Takes
	// precedence over BalanceClasses.
	Groups [][]int
	// GroupWeights biases the group draw; len must equal len(Groups) and
	// every weight must be positive. Empty means uniform.
	GroupWeights []float64
}

// Normalize fills zero fields with defaults and validates the rest.
func (c *GenConfig) Normalize() error {
	if c.N <= 0 {
		return fmt.Errorf("mnist: GenConfig.N=%d", c.N)
	}
	if c.NoiseLevel == 0 {
		c.NoiseLevel = 0.18
	}
	if c.NoiseLevel < 0 || c.NoiseLevel > 1 {
		return fmt.Errorf("mnist: NoiseLevel=%v", c.NoiseLevel)
	}
	if c.MaxRotate == 0 {
		c.MaxRotate = 0.55
	}
	if c.DifficultyExponent == 0 {
		c.DifficultyExponent = 1.2
	}
	if c.DifficultyExponent < 0 {
		return fmt.Errorf("mnist: DifficultyExponent=%v", c.DifficultyExponent)
	}
	for gi, g := range c.Groups {
		if len(g) == 0 {
			return fmt.Errorf("mnist: Groups[%d] is empty", gi)
		}
		for _, d := range g {
			if d < 0 || d >= Classes {
				return fmt.Errorf("mnist: Groups[%d] digit %d out of range [0,%d)", gi, d, Classes)
			}
		}
	}
	if len(c.GroupWeights) > 0 {
		if len(c.GroupWeights) != len(c.Groups) {
			return fmt.Errorf("mnist: %d GroupWeights for %d Groups", len(c.GroupWeights), len(c.Groups))
		}
		for wi, w := range c.GroupWeights {
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("mnist: GroupWeights[%d]=%v (must be finite and positive)", wi, w)
			}
		}
	}
	return nil
}

// ParseGroups parses a digit-group spec like "even,odd" or "0-4,567,89"
// into explicit digit groups. Groups are comma-separated; each token is
// "even", "odd", "all", an inclusive range "a-b", or a run of digits
// ("013" → {0,1,3}).
func ParseGroups(spec string) ([][]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("mnist: empty group spec")
	}
	var groups [][]int
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		var g []int
		switch {
		case tok == "even":
			for d := 0; d < Classes; d += 2 {
				g = append(g, d)
			}
		case tok == "odd":
			for d := 1; d < Classes; d += 2 {
				g = append(g, d)
			}
		case tok == "all":
			for d := 0; d < Classes; d++ {
				g = append(g, d)
			}
		case strings.Contains(tok, "-"):
			parts := strings.SplitN(tok, "-", 2)
			lo, err1 := strconv.Atoi(parts[0])
			hi, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil || lo > hi || lo < 0 || hi >= Classes {
				return nil, fmt.Errorf("mnist: bad digit range %q", tok)
			}
			for d := lo; d <= hi; d++ {
				g = append(g, d)
			}
		default:
			if tok == "" {
				return nil, fmt.Errorf("mnist: empty group token in %q", spec)
			}
			for _, r := range tok {
				if r < '0' || r > '9' {
					return nil, fmt.Errorf("mnist: bad group token %q (want even, odd, all, a-b or digits)", tok)
				}
				g = append(g, int(r-'0'))
			}
		}
		groups = append(groups, g)
	}
	return groups, nil
}

// pickLabel draws a label from the configured groups: group by weight
// (uniform when unweighted), then digit uniformly within the group.
func (c *GenConfig) pickLabel(rng *rand.Rand) int {
	gi := 0
	if len(c.GroupWeights) > 0 {
		total := 0.0
		for _, w := range c.GroupWeights {
			total += w
		}
		u := rng.Float64() * total
		for i, w := range c.GroupWeights {
			if u < w || i == len(c.GroupWeights)-1 {
				gi = i
				break
			}
			u -= w
		}
	} else {
		gi = rng.Intn(len(c.Groups))
	}
	g := c.Groups[gi]
	return g[rng.Intn(len(g))]
}

// Generate synthesizes cfg.N labelled digit images. It is deterministic
// for a fixed config.
func Generate(cfg GenConfig) ([]Image, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	variants := glyphVariants()
	imgs := make([]Image, cfg.N)
	for i := range imgs {
		label := rng.Intn(Classes)
		if cfg.BalanceClasses {
			label = i % Classes
		}
		if len(cfg.Groups) > 0 {
			label = cfg.pickLabel(rng)
		}
		imgs[i] = renderDigit(label, variants[label], rng, &cfg)
	}
	return imgs, nil
}

// GenerateSplit produces a train and a test set from two derived seeds, the
// usual 60k/10k style split at configurable sizes.
func GenerateSplit(trainN, testN int, seed int64) (trainImgs, testImgs []Image, err error) {
	trainImgs, err = Generate(GenConfig{N: trainN, Seed: seed, BalanceClasses: true})
	if err != nil {
		return nil, nil, err
	}
	testImgs, err = Generate(GenConfig{N: testN, Seed: seed + 7919, BalanceClasses: true})
	if err != nil {
		return nil, nil, err
	}
	return trainImgs, testImgs, nil
}

// renderDigit draws one randomized instance of the digit's glyph.
func renderDigit(label int, variants []glyph, rng *rand.Rand, cfg *GenConfig) Image {
	// Difficulty draw: U^e keeps most samples easy; the per-class hardness
	// multiplier shifts each digit's whole distribution.
	difficulty := math.Pow(rng.Float64(), cfg.DifficultyExponent)
	d := difficulty * classHardness[label]

	g := variants[rng.Intn(len(variants))]

	// Affine warp parameters scale with effective difficulty d.
	rot := (rng.Float64()*2 - 1) * cfg.MaxRotate * d
	scaleX := 1 + (rng.Float64()*2-1)*0.30*d
	scaleY := 1 + (rng.Float64()*2-1)*0.30*d
	shear := (rng.Float64()*2 - 1) * 0.50 * d
	dx := (rng.Float64()*2 - 1) * 0.15 * d
	dy := (rng.Float64()*2 - 1) * 0.15 * d

	// Stroke appearance.
	width := 0.040 + 0.018*rng.Float64() + 0.028*d*rng.Float64()
	wavAmp := 0.022 * d * rng.Float64() * 2
	wavFreq := 2 + rng.Float64()*4
	wavPhase := rng.Float64() * 2 * math.Pi

	cos, sin := math.Cos(rot), math.Sin(rot)
	warp := func(p pt) pt {
		// center, scale/shear/rotate, translate, un-center
		x := (p.X - 0.5) * scaleX
		y := (p.Y - 0.5) * scaleY
		x += shear * y
		xr := x*cos - y*sin
		yr := x*sin + y*cos
		return pt{X: xr + 0.5 + dx, Y: yr + 0.5 + dy}
	}

	// Build the warped, wavy segment list.
	type seg struct{ a, b pt }
	var segs []seg
	arcPos := 0.0
	for _, st := range g {
		prev := pt{}
		for i, p := range st {
			q := warp(p)
			arcPos += 0.13
			q.X += wavAmp * math.Sin(wavFreq*arcPos+wavPhase)
			q.Y += wavAmp * math.Cos(wavFreq*arcPos*0.8+wavPhase)
			if i > 0 {
				segs = append(segs, seg{prev, q})
			}
			prev = q
		}
	}

	// Rasterize: intensity from distance-to-nearest-segment with a soft
	// falloff, approximating pen pressure and antialiasing.
	pix := make([]float64, Side*Side)
	aa := 0.030 // antialias band in glyph units
	for py := 0; py < Side; py++ {
		for px := 0; px < Side; px++ {
			gx := (float64(px) + 0.5) / Side
			gy := (float64(py) + 0.5) / Side
			best := math.Inf(1)
			for _, s := range segs {
				if dseg := distPointSeg(gx, gy, s.a, s.b); dseg < best {
					best = dseg
				}
			}
			v := 1 - (best-width)/aa
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			pix[py*Side+px] = v
		}
	}

	// Slight blur couples neighbouring pixels like optical scanning does.
	pix = blur3x3(pix, 0.30+0.35*d)

	// Additive noise, scaled by difficulty.
	sigma := cfg.NoiseLevel * (0.25 + 0.75*d)
	for i := range pix {
		pix[i] += rng.NormFloat64() * sigma
		if pix[i] < 0 {
			pix[i] = 0
		}
		if pix[i] > 1 {
			pix[i] = 1
		}
	}

	return Image{Pixels: pix, Label: label, Difficulty: d}
}

// distPointSeg returns the Euclidean distance from (x,y) to segment ab.
func distPointSeg(x, y float64, a, b pt) float64 {
	vx, vy := b.X-a.X, b.Y-a.Y
	wx, wy := x-a.X, y-a.Y
	den := vx*vx + vy*vy
	t := 0.0
	if den > 0 {
		t = (wx*vx + wy*vy) / den
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
	}
	dx := x - (a.X + t*vx)
	dy := y - (a.Y + t*vy)
	return math.Sqrt(dx*dx + dy*dy)
}

// blur3x3 applies one pass of a 3×3 binomial-ish blur with the given
// strength in [0,1]; strength 0 returns the input unchanged.
func blur3x3(pix []float64, strength float64) []float64 {
	if strength <= 0 {
		return pix
	}
	out := make([]float64, len(pix))
	for y := 0; y < Side; y++ {
		for x := 0; x < Side; x++ {
			sum := 0.0
			cnt := 0.0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					nx, ny := x+dx, y+dy
					if nx < 0 || nx >= Side || ny < 0 || ny >= Side {
						continue
					}
					sum += pix[ny*Side+nx]
					cnt++
				}
			}
			center := pix[y*Side+x]
			out[y*Side+x] = center*(1-strength) + strength*(sum/cnt)
		}
	}
	return out
}
