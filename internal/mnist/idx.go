package mnist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// IDX magic numbers from Yann LeCun's MNIST format: unsigned byte data with
// 3 dimensions (images) or 1 dimension (labels).
const (
	idxMagicImages = 0x00000803
	idxMagicLabels = 0x00000801
)

// WriteIDXImages writes images in idx3-ubyte format (big-endian header,
// one byte per pixel, intensity 0..255). The Difficulty field is not
// representable in the format and is dropped.
func WriteIDXImages(w io.Writer, imgs []Image) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{idxMagicImages, uint32(len(imgs)), Side, Side}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.BigEndian, v); err != nil {
			return fmt.Errorf("mnist: write idx header: %w", err)
		}
	}
	buf := make([]byte, Side*Side)
	for i := range imgs {
		if len(imgs[i].Pixels) != Side*Side {
			return fmt.Errorf("mnist: image %d has %d pixels, want %d", i, len(imgs[i].Pixels), Side*Side)
		}
		for j, p := range imgs[i].Pixels {
			v := p * 255
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			buf[j] = byte(v + 0.5)
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("mnist: write idx pixels: %w", err)
		}
	}
	return bw.Flush()
}

// WriteIDXLabels writes labels in idx1-ubyte format.
func WriteIDXLabels(w io.Writer, imgs []Image) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{idxMagicLabels, uint32(len(imgs))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.BigEndian, v); err != nil {
			return fmt.Errorf("mnist: write idx header: %w", err)
		}
	}
	for i := range imgs {
		if imgs[i].Label < 0 || imgs[i].Label > 255 {
			return fmt.Errorf("mnist: label %d not a byte", imgs[i].Label)
		}
		if err := bw.WriteByte(byte(imgs[i].Label)); err != nil {
			return fmt.Errorf("mnist: write idx label: %w", err)
		}
	}
	return bw.Flush()
}

// ReadIDXImages parses an idx3-ubyte stream into images with zero labels;
// pair it with ReadIDXLabels via MergeLabels.
func ReadIDXImages(r io.Reader) ([]Image, error) {
	br := bufio.NewReader(r)
	var magic, n, rows, cols uint32
	for _, p := range []*uint32{&magic, &n, &rows, &cols} {
		if err := binary.Read(br, binary.BigEndian, p); err != nil {
			return nil, fmt.Errorf("mnist: read idx header: %w", err)
		}
	}
	if magic != idxMagicImages {
		return nil, fmt.Errorf("mnist: bad image magic 0x%08x", magic)
	}
	if rows != Side || cols != Side {
		return nil, fmt.Errorf("mnist: image size %dx%d, want %dx%d", rows, cols, Side, Side)
	}
	imgs := make([]Image, n)
	buf := make([]byte, Side*Side)
	for i := range imgs {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("mnist: read image %d: %w", i, err)
		}
		pix := make([]float64, Side*Side)
		for j, b := range buf {
			pix[j] = float64(b) / 255
		}
		imgs[i] = Image{Pixels: pix}
	}
	return imgs, nil
}

// ReadIDXLabels parses an idx1-ubyte stream.
func ReadIDXLabels(r io.Reader) ([]int, error) {
	br := bufio.NewReader(r)
	var magic, n uint32
	for _, p := range []*uint32{&magic, &n} {
		if err := binary.Read(br, binary.BigEndian, p); err != nil {
			return nil, fmt.Errorf("mnist: read idx header: %w", err)
		}
	}
	if magic != idxMagicLabels {
		return nil, fmt.Errorf("mnist: bad label magic 0x%08x", magic)
	}
	labels := make([]int, n)
	buf := make([]byte, 1)
	for i := range labels {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("mnist: read label %d: %w", i, err)
		}
		labels[i] = int(buf[0])
	}
	return labels, nil
}

// MergeLabels attaches labels to images in order.
func MergeLabels(imgs []Image, labels []int) error {
	if len(imgs) != len(labels) {
		return fmt.Errorf("mnist: %d images but %d labels", len(imgs), len(labels))
	}
	for i := range imgs {
		if labels[i] < 0 || labels[i] >= Classes {
			return fmt.Errorf("mnist: label %d out of range at %d", labels[i], i)
		}
		imgs[i].Label = labels[i]
	}
	return nil
}

// LoadDir loads a real MNIST directory if the canonical four files exist
// (train-images-idx3-ubyte etc.); otherwise it returns os.ErrNotExist so
// callers can fall back to Generate.
func LoadDir(dir string) (trainImgs, testImgs []Image, err error) {
	load := func(imgFile, lblFile string) ([]Image, error) {
		fi, err := os.Open(filepath.Join(dir, imgFile))
		if err != nil {
			return nil, err
		}
		defer fi.Close()
		imgs, err := ReadIDXImages(fi)
		if err != nil {
			return nil, err
		}
		fl, err := os.Open(filepath.Join(dir, lblFile))
		if err != nil {
			return nil, err
		}
		defer fl.Close()
		labels, err := ReadIDXLabels(fl)
		if err != nil {
			return nil, err
		}
		if err := MergeLabels(imgs, labels); err != nil {
			return nil, err
		}
		return imgs, nil
	}
	trainImgs, err = load("train-images-idx3-ubyte", "train-labels-idx1-ubyte")
	if err != nil {
		return nil, nil, err
	}
	testImgs, err = load("t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte")
	if err != nil {
		return nil, nil, err
	}
	return trainImgs, testImgs, nil
}
