package mnist

import "math"

// pt is a point in glyph space: the unit square [0,1]², x right, y down.
type pt struct{ X, Y float64 }

// stroke is a polyline in glyph space. Curved strokes are pre-sampled into
// polylines by the helpers below, so the rasterizer only ever deals with
// line segments.
type stroke []pt

// glyph is the skeleton of one digit: a set of strokes.
type glyph []stroke

// line returns a two-point stroke.
func line(x0, y0, x1, y1 float64) stroke {
	return stroke{{x0, y0}, {x1, y1}}
}

// bezier samples a quadratic Bézier curve into n segments.
func bezier(p0, c, p1 pt, n int) stroke {
	s := make(stroke, 0, n+1)
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		u := 1 - t
		s = append(s, pt{
			X: u*u*p0.X + 2*u*t*c.X + t*t*p1.X,
			Y: u*u*p0.Y + 2*u*t*c.Y + t*t*p1.Y,
		})
	}
	return s
}

// arc samples a circular arc (angles in radians, y-down screen coords) into
// n segments.
func arc(cx, cy, r, a0, a1 float64, n int) stroke {
	s := make(stroke, 0, n+1)
	for i := 0; i <= n; i++ {
		t := a0 + (a1-a0)*float64(i)/float64(n)
		s = append(s, pt{X: cx + r*math.Cos(t), Y: cy + r*math.Sin(t)})
	}
	return s
}

// circle samples a full circle.
func circle(cx, cy, r float64, n int) stroke {
	return arc(cx, cy, r, 0, 2*math.Pi, n)
}

// glyphVariants returns the skeleton variants for each digit. Multiple
// variants per digit model handwriting styles (e.g. "1" with and without a
// flag, "7" with and without a crossbar); the generator picks one per
// sample.
//
// The geometry is chosen so that digit 1 is the simplest, least confusable
// shape while 5 shares long sub-strokes with 3, 6 and 8 — the intrinsic
// hardness ordering the paper observes on real MNIST.
func glyphVariants() [Classes][]glyph {
	var g [Classes][]glyph

	// 0 — oval; variant with a slight slant.
	g[0] = []glyph{
		{ovalStroke(0.5, 0.5, 0.21, 0.33, 0)},
		{ovalStroke(0.5, 0.5, 0.19, 0.34, 0.15)},
	}

	// 1 — vertical bar; variant with entry flag; variant with base serif.
	g[1] = []glyph{
		{line(0.52, 0.15, 0.48, 0.85)},
		{line(0.36, 0.30, 0.53, 0.15), line(0.53, 0.15, 0.50, 0.85)},
		{line(0.38, 0.28, 0.52, 0.15), line(0.52, 0.15, 0.50, 0.85), line(0.36, 0.85, 0.64, 0.85)},
	}

	// 2 — open top arc, diagonal, base bar.
	g[2] = []glyph{
		{
			arc(0.48, 0.32, 0.18, math.Pi*1.05, math.Pi*2.25, 10),
			bezier(pt{0.64, 0.42}, pt{0.42, 0.62}, pt{0.28, 0.84}, 8),
			line(0.28, 0.84, 0.74, 0.84),
		},
		{
			arc(0.5, 0.30, 0.17, math.Pi*1.0, math.Pi*2.3, 10),
			line(0.62, 0.44, 0.28, 0.84),
			line(0.28, 0.84, 0.72, 0.80),
		},
	}

	// 3 — two right-facing bowls.
	g[3] = []glyph{
		{
			arc(0.45, 0.32, 0.17, math.Pi*1.15, math.Pi*2.6, 10),
			arc(0.45, 0.66, 0.19, math.Pi*1.45, math.Pi*2.85, 10),
		},
		{
			bezier(pt{0.32, 0.2}, pt{0.68, 0.16}, pt{0.52, 0.46}, 8),
			bezier(pt{0.52, 0.46}, pt{0.76, 0.62}, pt{0.34, 0.82}, 8),
		},
	}

	// 4 — open and closed styles.
	g[4] = []glyph{
		{
			line(0.56, 0.15, 0.24, 0.58),
			line(0.24, 0.58, 0.78, 0.58),
			line(0.62, 0.32, 0.60, 0.85),
		},
		{
			line(0.30, 0.15, 0.28, 0.52),
			line(0.28, 0.52, 0.74, 0.52),
			line(0.64, 0.15, 0.62, 0.85),
		},
	}

	// 5 — top bar, spine, belly; the belly shares its arc with 3's lower
	// bowl and 6's loop, which is what makes 5 intrinsically confusable.
	g[5] = []glyph{
		{
			line(0.68, 0.16, 0.32, 0.16),
			line(0.32, 0.16, 0.30, 0.46),
			bezier(pt{0.30, 0.46}, pt{0.78, 0.42}, pt{0.62, 0.74}, 8),
			bezier(pt{0.62, 0.74}, pt{0.50, 0.90}, pt{0.28, 0.78}, 6),
		},
		{
			line(0.70, 0.15, 0.34, 0.17),
			line(0.34, 0.17, 0.33, 0.44),
			arc(0.47, 0.64, 0.20, math.Pi*1.5, math.Pi*2.85, 10),
		},
	}

	// 6 — sweeping descender into a lower loop.
	g[6] = []glyph{
		{
			bezier(pt{0.64, 0.14}, pt{0.36, 0.30}, pt{0.32, 0.62}, 8),
			circle(0.49, 0.66, 0.17, 14),
		},
		{
			bezier(pt{0.60, 0.16}, pt{0.34, 0.36}, pt{0.33, 0.68}, 8),
			circle(0.48, 0.68, 0.15, 14),
		},
	}

	// 7 — top bar and diagonal; variant with crossbar.
	g[7] = []glyph{
		{line(0.26, 0.18, 0.74, 0.18), line(0.74, 0.18, 0.42, 0.85)},
		{
			line(0.26, 0.18, 0.74, 0.18),
			line(0.74, 0.18, 0.42, 0.85),
			line(0.38, 0.52, 0.66, 0.52),
		},
	}

	// 8 — stacked loops sharing a waist.
	g[8] = []glyph{
		{circle(0.5, 0.32, 0.155, 14), circle(0.5, 0.665, 0.185, 14)},
		{ovalStroke(0.5, 0.31, 0.15, 0.16, 0.1), ovalStroke(0.5, 0.67, 0.18, 0.19, -0.1)},
	}

	// 9 — upper loop with tail (mirror of 6).
	g[9] = []glyph{
		{
			circle(0.5, 0.33, 0.165, 14),
			bezier(pt{0.66, 0.36}, pt{0.66, 0.62}, pt{0.56, 0.85}, 8),
		},
		{
			circle(0.51, 0.34, 0.155, 14),
			line(0.66, 0.36, 0.60, 0.85),
		},
	}

	return g
}

// ovalStroke samples an axis-aligned ellipse rotated by theta.
func ovalStroke(cx, cy, rx, ry, theta float64) stroke {
	const n = 18
	s := make(stroke, 0, n+1)
	ct, st := math.Cos(theta), math.Sin(theta)
	for i := 0; i <= n; i++ {
		t := 2 * math.Pi * float64(i) / float64(n)
		x := rx * math.Cos(t)
		y := ry * math.Sin(t)
		s = append(s, pt{X: cx + x*ct - y*st, Y: cy + x*st + y*ct})
	}
	return s
}

// classHardness is the per-digit deformation multiplier. Digit 1 is drawn
// with the least distortion (its glyph is also the simplest); digit 5 with
// the most. These defaults reproduce the intrinsic-difficulty ordering of
// the paper's Figs. 5 and 8 (max benefit digit 1, min digit 5).
var classHardness = [Classes]float64{
	0: 0.55,
	1: 0.25,
	2: 0.70,
	3: 0.72,
	4: 0.60,
	5: 1.00,
	6: 0.65,
	7: 0.50,
	8: 0.74,
	9: 0.66,
}
