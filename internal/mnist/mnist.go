// Package mnist provides the dataset substrate for the CDL reproduction.
//
// The paper evaluates on MNIST (60k train / 10k test, LeCun IDX files).
// That dataset is not available in this offline environment, so the package
// provides two interchangeable sources:
//
//   - ReadIDXImages/ReadIDXLabels load real MNIST files if the user has
//     them (byte-compatible with LeCun's idx3-ubyte/idx1-ubyte format), and
//   - Generate procedurally synthesizes MNIST-like 28×28 grayscale digits
//     from per-digit stroke skeletons with randomized affine warps, stroke
//     widths, waviness, blur and noise.
//
// The synthetic generator is the documented substitution (DESIGN.md §4):
// CDL's mechanism needs a dataset whose inputs vary widely in difficulty
// and whose classes differ in intrinsic hardness. Both properties are
// explicit knobs here — each sample carries the difficulty draw that shaped
// it, and per-class hardness defaults make digit 1 geometrically easiest
// and digit 5 hardest, mirroring the orderings the paper reports (Figs. 5
// and 8).
package mnist

import (
	"fmt"

	"cdl/internal/tensor"
	"cdl/internal/train"
)

// Side is the image side length in pixels (MNIST-compatible).
const Side = 28

// Classes is the number of digit classes.
const Classes = 10

// Image is one grayscale digit with its provenance.
type Image struct {
	// Pixels holds Side×Side intensities in [0,1], row-major.
	Pixels []float64
	// Label is the digit 0..9.
	Label int
	// Difficulty is the deformation draw in [0,1] that generated this
	// sample (0 for images loaded from IDX files).
	Difficulty float64
}

// Tensor returns the image as a [1,Side,Side] tensor suitable for the
// networks in internal/nn. The pixel storage is shared, not copied.
func (im *Image) Tensor() *tensor.T {
	return tensor.FromSlice(im.Pixels, 1, Side, Side)
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() Image {
	return Image{
		Pixels:     append([]float64(nil), im.Pixels...),
		Label:      im.Label,
		Difficulty: im.Difficulty,
	}
}

// ToSamples converts images into training samples.
func ToSamples(imgs []Image) []train.Sample {
	out := make([]train.Sample, len(imgs))
	for i := range imgs {
		out[i] = train.Sample{X: imgs[i].Tensor(), Label: imgs[i].Label}
	}
	return out
}

// SplitByClass groups image indices by label.
func SplitByClass(imgs []Image) [][]int {
	buckets := make([][]int, Classes)
	for i := range imgs {
		l := imgs[i].Label
		if l < 0 || l >= Classes {
			panic(fmt.Sprintf("mnist: label %d out of range", l))
		}
		buckets[l] = append(buckets[l], i)
	}
	return buckets
}
