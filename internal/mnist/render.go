package mnist

import "strings"

// asciiRamp maps intensity 0..1 to a character, darkest first. The gallery
// in Table IV of the paper shows example digit images per exit stage; the
// cmd tools reproduce it as ASCII art through Render.
const asciiRamp = " .:-=+*#%@"

// Render draws the image as ASCII art, one text row per pixel row.
func Render(im Image) string {
	var b strings.Builder
	b.Grow((Side + 1) * Side)
	for y := 0; y < Side; y++ {
		for x := 0; x < Side; x++ {
			v := im.Pixels[y*Side+x]
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			idx := int(v * float64(len(asciiRamp)-1))
			b.WriteByte(asciiRamp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderSideBySide renders several images in one block, separated by a
// column of spaces — used for the Table IV exit gallery.
func RenderSideBySide(imgs []Image, gap int) string {
	if len(imgs) == 0 {
		return ""
	}
	rows := make([]strings.Builder, Side)
	sep := strings.Repeat(" ", gap)
	for k, im := range imgs {
		lines := strings.Split(strings.TrimRight(Render(im), "\n"), "\n")
		for y := 0; y < Side; y++ {
			if k > 0 {
				rows[y].WriteString(sep)
			}
			rows[y].WriteString(lines[y])
		}
	}
	var b strings.Builder
	for y := 0; y < Side; y++ {
		b.WriteString(rows[y].String())
		b.WriteByte('\n')
	}
	return b.String()
}
