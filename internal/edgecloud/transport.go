package edgecloud

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"cdl/internal/core"
	"cdl/internal/edgecloud/wire"
	"cdl/internal/obs"
	"cdl/internal/serve"
	"cdl/internal/tensor"
)

// HTTPTransport offloads to a cdlserve backend: POST /v1/resume when Model
// is empty (the backend's default model), or POST /v2/models/{Model}/resume
// when set — one multi-model cloud tier can then back heterogeneous edge
// splits, each edge naming the cascade its prefix belongs to. It is
// stateless apart from the shared http.Client, so any number of Edges may
// hold the same transport.
type HTTPTransport struct {
	// BaseURL is the cloud server's base, e.g. "http://cloud:8080".
	BaseURL string
	// Model names the cloud registry entry to resume on; empty targets the
	// backend's default model over the /v1 surface. The named model must be
	// the same cascade the edge runs its prefix on — the cloud validates
	// every activation's stage/shape against it and rejects mismatches.
	Model string
	// Client is the HTTP client; nil uses a client with a 30s timeout
	// (an offload must never hang an edge worker forever).
	Client *http.Client
}

// NewHTTPTransport returns a transport for the given base URL with the
// default client, targeting the backend's default model.
func NewHTTPTransport(baseURL string) *HTTPTransport {
	return &HTTPTransport{BaseURL: baseURL}
}

// NewHTTPModelTransport is NewHTTPTransport pinned to a named model on the
// cloud registry (the /v2 resume surface).
func NewHTTPModelTransport(baseURL, model string) *HTTPTransport {
	return &HTTPTransport{BaseURL: baseURL, Model: model}
}

// Resume implements Transport over the serve JSON schema.
func (h *HTTPTransport) Resume(payload []byte, delta float64) (core.ExitRecord, error) {
	recs, err := h.ResumeBatch([][]byte{payload}, delta)
	if err != nil {
		return core.ExitRecord{}, err
	}
	return recs[0], nil
}

// ResumeBatch implements BatchTransport: all payloads travel in one
// resume request, so a hard batch costs one round trip instead of one per
// image.
func (h *HTTPTransport) ResumeBatch(payloads [][]byte, delta float64) ([]core.ExitRecord, error) {
	recs, _, err := h.resumeBatch(payloads, delta, "")
	return recs, err
}

// ResumeBatchTraced implements TracedBatchTransport: the trace ID rides
// the X-Trace-Id request header (so the cloud adopts it and opts the
// response into span detail), and the cloud's span timeline comes back in
// the response body.
func (h *HTTPTransport) ResumeBatchTraced(payloads [][]byte, delta float64, traceID string) ([]core.ExitRecord, []obs.Span, error) {
	return h.resumeBatch(payloads, delta, traceID)
}

func (h *HTTPTransport) resumeBatch(payloads [][]byte, delta float64, traceID string) ([]core.ExitRecord, []obs.Span, error) {
	b64 := make([]string, len(payloads))
	for i, p := range payloads {
		b64[i] = base64.StdEncoding.EncodeToString(p)
	}
	var body []byte
	var err error
	var path string
	if h.Model == "" {
		path = "/v1/resume"
		req := serve.ResumeRequest{}
		if len(b64) == 1 {
			req.Payload = b64[0]
		} else {
			req.Payloads = b64
		}
		if delta >= 0 {
			d := delta
			req.Delta = &d
		}
		body, err = json.Marshal(req)
	} else {
		path = "/v2/models/" + h.Model + "/resume"
		req := serve.V2ResumeRequest{Payloads: b64}
		if delta >= 0 {
			d := delta
			req.Policy = &serve.PolicyRequest{Delta: &d}
		}
		body, err = json.Marshal(req)
	}
	if err != nil {
		return nil, nil, err
	}
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	url := strings.TrimSuffix(h.BaseURL, "/") + path
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		hreq.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return nil, nil, fmt.Errorf("cloud HTTP %d: %s", resp.StatusCode, e.Error)
		}
		return nil, nil, fmt.Errorf("cloud HTTP %d", resp.StatusCode)
	}
	// The v1 and v2 result rows share field names, so one decode shape
	// covers both surfaces.
	var out serve.ClassifyResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, nil, fmt.Errorf("cloud response: %w", err)
	}
	if len(out.Results) != len(payloads) {
		return nil, nil, fmt.Errorf("cloud returned %d results for %d payloads", len(out.Results), len(payloads))
	}
	recs := make([]core.ExitRecord, len(out.Results))
	for i, r := range out.Results {
		recs[i] = core.ExitRecord{
			Node:       r.Node,
			StageIndex: r.ExitIndex,
			StageName:  r.Exit,
			Label:      r.Label,
			Confidence: r.Confidence,
			Ops:        r.Ops,
		}
	}
	return recs, out.Spans, nil
}

// Loopback is an in-process cloud tier: it decodes offloads and resumes
// them on its own warm session. It exists for tests, demos and the
// degenerate single-node deployment, and exercises the same wire
// round-trip a real backend would. Single-goroutine, like the Edge that
// owns it.
type Loopback struct {
	graph *core.Graph
	sess  *core.Session
}

// NewLoopback builds an in-process cloud over a private replica of the
// model.
func NewLoopback(model *core.CDLN) (*Loopback, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return NewGraphLoopback(core.LinearGraph(model))
}

// NewGraphLoopback is NewLoopback for a routing graph: branch handoffs
// resume at the named node exactly as a real graph-serving backend would.
func NewGraphLoopback(g *core.Graph) (*Loopback, error) {
	sess, err := core.NewGraphSession(g)
	if err != nil {
		return nil, err
	}
	return &Loopback{graph: sess.Graph(), sess: sess}, nil
}

// Resume implements Transport. Payload validation is the same
// core.Graph.ValidateResume a real backend applies, so the loopback accepts
// exactly what /v1/resume would.
func (l *Loopback) Resume(payload []byte, delta float64) (core.ExitRecord, error) {
	act, err := wire.Decode(payload)
	if err != nil {
		return core.ExitRecord{}, err
	}
	if err := l.graph.ValidateResume(act.Node, act.FromStage, act.Pos, act.Shape); err != nil {
		return core.ExitRecord{}, err
	}
	return l.sess.ResumeAt(tensor.FromSlice(act.Data, act.Shape...), act.Node, act.FromStage, delta), nil
}

// ResumeBatchTraced implements TracedBatchTransport: payloads resume
// serially on the private session with a stage observer attached, so the
// in-process "cloud" returns the same span vocabulary a real backend
// would (minus queue/batch spans — there is no pool here).
func (l *Loopback) ResumeBatchTraced(payloads [][]byte, delta float64, traceID string) ([]core.ExitRecord, []obs.Span, error) {
	var spans []obs.Span
	l.sess.SetStageObserver(func(ev core.StageEvent) {
		spans = append(spans, obs.Span{
			Name:        serve.SpanName(l.graph, ev),
			StartUnixNS: ev.Start.UnixNano(),
			DurationMS:  float64(ev.End.Sub(ev.Start)) / float64(time.Millisecond),
		})
	})
	defer l.sess.SetStageObserver(nil)
	recs := make([]core.ExitRecord, len(payloads))
	for i, p := range payloads {
		rec, err := l.Resume(p, delta)
		if err != nil {
			return nil, nil, err
		}
		recs[i] = rec
	}
	return recs, spans, nil
}
