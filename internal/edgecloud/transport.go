package edgecloud

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"cdl/internal/core"
	"cdl/internal/edgecloud/wire"
	"cdl/internal/serve"
	"cdl/internal/tensor"
)

// HTTPTransport offloads to a cdlserve backend's POST /v1/resume. It is
// stateless apart from the shared http.Client, so any number of Edges may
// hold the same transport.
type HTTPTransport struct {
	// BaseURL is the cloud server's base, e.g. "http://cloud:8080".
	BaseURL string
	// Client is the HTTP client; nil uses a client with a 30s timeout
	// (an offload must never hang an edge worker forever).
	Client *http.Client
}

// NewHTTPTransport returns a transport for the given base URL with the
// default client.
func NewHTTPTransport(baseURL string) *HTTPTransport {
	return &HTTPTransport{BaseURL: baseURL}
}

// Resume implements Transport over the serve JSON schema.
func (h *HTTPTransport) Resume(payload []byte, delta float64) (core.ExitRecord, error) {
	recs, err := h.ResumeBatch([][]byte{payload}, delta)
	if err != nil {
		return core.ExitRecord{}, err
	}
	return recs[0], nil
}

// ResumeBatch implements BatchTransport: all payloads travel in one
// /v1/resume request, so a hard batch costs one round trip instead of one
// per image.
func (h *HTTPTransport) ResumeBatch(payloads [][]byte, delta float64) ([]core.ExitRecord, error) {
	req := serve.ResumeRequest{}
	if len(payloads) == 1 {
		req.Payload = base64.StdEncoding.EncodeToString(payloads[0])
	} else {
		req.Payloads = make([]string, len(payloads))
		for i, p := range payloads {
			req.Payloads[i] = base64.StdEncoding.EncodeToString(p)
		}
	}
	if delta >= 0 {
		d := delta
		req.Delta = &d
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	url := strings.TrimSuffix(h.BaseURL, "/") + "/v1/resume"
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("cloud HTTP %d: %s", resp.StatusCode, e.Error)
		}
		return nil, fmt.Errorf("cloud HTTP %d", resp.StatusCode)
	}
	var out serve.ClassifyResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("cloud response: %w", err)
	}
	if len(out.Results) != len(payloads) {
		return nil, fmt.Errorf("cloud returned %d results for %d payloads", len(out.Results), len(payloads))
	}
	recs := make([]core.ExitRecord, len(out.Results))
	for i, r := range out.Results {
		recs[i] = core.ExitRecord{
			StageIndex: r.ExitIndex,
			StageName:  r.Exit,
			Label:      r.Label,
			Confidence: r.Confidence,
			Ops:        r.Ops,
		}
	}
	return recs, nil
}

// Loopback is an in-process cloud tier: it decodes offloads and resumes
// them on its own warm session. It exists for tests, demos and the
// degenerate single-node deployment, and exercises the same wire
// round-trip a real backend would. Single-goroutine, like the Edge that
// owns it.
type Loopback struct {
	model *core.CDLN
	sess  *core.Session
}

// NewLoopback builds an in-process cloud over a private replica of the
// model.
func NewLoopback(model *core.CDLN) (*Loopback, error) {
	sess, err := core.NewSession(model)
	if err != nil {
		return nil, err
	}
	return &Loopback{model: model, sess: sess}, nil
}

// Resume implements Transport. Payload validation is the same
// core.CDLN.ValidateResume a real backend applies, so the loopback accepts
// exactly what /v1/resume would.
func (l *Loopback) Resume(payload []byte, delta float64) (core.ExitRecord, error) {
	act, err := wire.Decode(payload)
	if err != nil {
		return core.ExitRecord{}, err
	}
	if err := l.model.ValidateResume(act.FromStage, act.Pos, act.Shape); err != nil {
		return core.ExitRecord{}, err
	}
	return l.sess.Resume(tensor.FromSlice(act.Data, act.Shape...), act.FromStage, delta), nil
}
