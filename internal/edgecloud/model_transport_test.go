package edgecloud

// model_transport_test.go covers the multi-model cloud tier: an
// HTTPTransport pinned to a named registry entry must resume on exactly
// that model (POST /v2/models/{name}/resume), so one cloud process can
// back heterogeneous edge splits — each edge names the cascade its prefix
// belongs to, and records stay bit-identical to a monolithic run of that
// cascade.

import (
	"net/http/httptest"
	"testing"

	"cdl/internal/core"
	"cdl/internal/serve"
	"cdl/internal/tensor"
	"cdl/internal/train"
)

// tensorsOf collects samples' input tensors.
func tensorsOf(data []train.Sample) []*tensor.T {
	out := make([]*tensor.T, len(data))
	for i, s := range data {
		out[i] = s.X
	}
	return out
}

func TestHTTPModelTransportResumesNamedModel(t *testing.T) {
	cdlnA, _ := testCDLN(t, 91)
	cdlnB, data := testCDLN(t, 92) // different weights, same shapes

	// Cloud tier: default model A plus named entry "b" — the edge below
	// splits model B, so only the named route can serve it correctly.
	reg := serve.NewRegistry(serve.Config{Workers: 2})
	if _, err := reg.Register("a", cdlnA); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("b", cdlnB); err != nil {
		t.Fatal(err)
	}
	cloud, err := serve.NewWithRegistry(reg)
	if err != nil {
		t.Fatal(err)
	}
	cloudTS := httptest.NewServer(cloud.Handler())
	t.Cleanup(func() { cloudTS.Close(); cloud.Close() })

	mono, err := core.NewSession(cdlnB)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []float64{-1, 0.9} {
		edge, err := New(cdlnB, NewHTTPModelTransport(cloudTS.URL, "b"), DefaultConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		offloads := 0
		for i, s := range data[:60] {
			res, err := edge.ClassifyDelta(s.X, delta)
			if err != nil {
				t.Fatalf("δ=%v sample %d: %v", delta, i, err)
			}
			if res.Offloaded {
				offloads++
			}
			ref := mono.ClassifyDelta(s.X, delta)
			if !sameRecord(res.Record, ref) {
				t.Fatalf("δ=%v sample %d: split-on-b %+v != monolithic-b %+v", delta, i, res.Record, ref)
			}
		}
		if delta == 0.9 && offloads == 0 {
			t.Fatal("δ=0.9 produced no offloads; the named route went unexercised")
		}
	}

	// Batch path over the same named route.
	edge, err := New(cdlnB, NewHTTPModelTransport(cloudTS.URL, "b"), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	xs := tensorsOf(data[:40])
	results, err := edge.ClassifyBatch(xs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		ref := mono.ClassifyDelta(xs[i], 0.9)
		if !sameRecord(res.Record, ref) {
			t.Fatalf("batch sample %d: %+v != %+v", i, res.Record, ref)
		}
	}

	// A transport naming a missing entry must surface the cloud's 404, not
	// fabricate records.
	bad, err := New(cdlnB, NewHTTPModelTransport(cloudTS.URL, "ghost"), DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Classify(data[0].X); err == nil {
		t.Fatal("offload to an unknown cloud model succeeded")
	}
}
