package edgecloud

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cdl/internal/control"
	"cdl/internal/core"
	"cdl/internal/energy"
	"cdl/internal/obs"
	"cdl/internal/serve"
	"cdl/internal/tensor"
)

// ServerConfig sizes the edge HTTP front.
type ServerConfig struct {
	// Workers is the number of warm Edge runtimes (each with a private
	// session and transport). Default GOMAXPROCS.
	Workers int
	// MaxRequestImages caps the images accepted in one request. Default
	// 256.
	MaxRequestImages int
	// ModelName is reported by /healthz.
	ModelName string
	// CloudURL is reported by /healthz (informational; the transports
	// decide where offloads actually go).
	CloudURL string
	// CloudModel is the named cloud registry entry offloads resume on
	// (informational here, like CloudURL: build the transports with
	// NewHTTPModelTransport to actually target it). Empty means the
	// cloud's default model — one multi-model cloud tier can back many
	// edge fronts, each split against its own named cascade.
	CloudModel string
	// AcquireTimeout is how long a request may wait for a free edge
	// worker before being shed with 503 — with a slow cloud each offload
	// can hold a worker for the transport's full timeout, and an edge
	// node must shed that backlog rather than queue unboundedly (the
	// same philosophy as serve's bounded queue). Default 1s.
	AcquireTimeout time.Duration

	// SLO, when active, attaches the same feedback controller the cloud
	// registry runs (internal/control) to adapt the edge's offload
	// split: under sustained pressure (busy workers, latency, energy)
	// the controller caps the cascade below the split stage, resolving
	// every input locally instead of queueing on a slow cloud, and
	// restores the configured split when the pressure passes. Only
	// requests without an explicit δ inherit the adapted policy.
	SLO control.SLO
	// ControlInterval is the controller tick period. Default 200ms.
	ControlInterval time.Duration
	// ControlWindow is the sliding telemetry span. Default 5s.
	ControlWindow time.Duration

	// ReadHeaderTimeout/IdleTimeout/MaxHeaderBytes harden ListenAndServe
	// exactly as in serve.Config. Defaults 5s / 60s / 64 KiB.
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration
	MaxHeaderBytes    int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxRequestImages <= 0 {
		c.MaxRequestImages = 256
	}
	if c.AcquireTimeout == 0 {
		c.AcquireTimeout = time.Second
	}
	if c.ControlInterval <= 0 {
		c.ControlInterval = 200 * time.Millisecond
	}
	if c.ControlWindow <= 0 {
		c.ControlWindow = 5 * time.Second
	}
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.MaxHeaderBytes <= 0 {
		c.MaxHeaderBytes = 64 << 10
	}
	return c
}

// Server is the edge node's HTTP front. It speaks the same /v1/classify
// JSON schema as the monolithic serve.Server — a client cannot tell an
// edge front from a full backend — but answers locally only when the
// prefix cascade exits, forwarding the hard residue to the cloud tier.
//
// Endpoints:
//
//	POST /v1/classify  same schema as serve; per-request δ forwarded on offload
//	GET  /healthz      liveness, model identity, split point, cloud target
//	GET  /statsz       offload fraction and tiered (edge/link/cloud) energy
type Server struct {
	cfg     ServerConfig
	edgeCfg Config
	// graph is the served routing graph; model is its trunk (the whole
	// cascade for linear deployments) — the request surface's input
	// validation is trunk-shaped.
	graph    *core.Graph
	model    *core.CDLN
	inWidth  int
	baseOps  float64
	edges    chan *Edge
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped in the tracing middleware
	slow     *obs.SlowLog
	closed   atomic.Bool // flips on Close; /readyz turns 503
	started  time.Time
	mu       sync.Mutex
	acc      *energy.TieredAccumulator // guarded by mu
	requests int64                     // guarded by mu
	invalid  int64                     // guarded by mu
	rejected int64                     // guarded by mu
	cloudErr int64                     // guarded by mu
	images   int64                     // guarded by mu
	local    int64                     // guarded by mu
	offload  int64                     // guarded by mu
	// lat is the cumulative whole-request latency histogram (local exits
	// and cloud round trips alike), guarded by mu.
	lat *control.Histogram

	// The SLO control plane (nil/zero when no SLO is configured): the
	// telemetry window, the controller behind ctrlMu, and the policy
	// no-δ requests currently inherit.
	window     *control.Window
	ctrlMu     sync.Mutex
	ctrl       *control.Controller // guarded by ctrlMu
	lastSample control.Sample      // guarded by ctrlMu
	lastSnap   control.Snapshot    // guarded by ctrlMu
	controlled atomic.Pointer[core.ExitPolicy]
	stopCtrl   chan struct{}
	ctrlDone   chan struct{}
	closeOnce  sync.Once

	// Flight recorder and burn-rate monitor (the edge observability
	// plane): flights backs /debug/flightz, flight is the single model's
	// ring, alert is nil without an SLO (no latency target to classify
	// against). flightName labels both surfaces.
	flights    *obs.FlightSet
	flight     *obs.FlightRecorder
	flightName string
	alert      *control.AlertMonitor
	ctrlRung   atomic.Int32
	// liveP99Bits/liveP99AtNS cache the window's p99 for the flight
	// recorder's anomaly gate (refreshed at most every 250ms).
	liveP99Bits atomic.Uint64
	liveP99AtNS atomic.Int64
}

// NewServer builds cfg.Workers Edge runtimes, each with its own transport
// from newTransport (transports with per-connection state must not be
// shared across workers; an HTTPTransport may simply be returned
// repeatedly).
func NewServer(model *core.CDLN, newTransport func() (Transport, error), edgeCfg Config, cfg ServerConfig) (*Server, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return NewGraphServer(core.LinearGraph(model), newTransport, edgeCfg, cfg)
}

// NewGraphServer is NewServer for a routing graph: the split cuts the
// trunk, routed inputs offload at their branch handoff, and the tiered
// accounting charges branch paths as cloud compute.
func NewGraphServer(g *core.Graph, newTransport func() (Transport, error), edgeCfg Config, cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	edgeCfg = edgeCfg.withDefaults()
	costs, err := energy.NewEvaluator().GraphTierCosts(g, edgeCfg.SplitStage, edgeCfg.Link)
	if err != nil {
		return nil, err
	}
	model := g.Trunk()
	s := &Server{
		cfg:     cfg,
		edgeCfg: edgeCfg,
		graph:   g,
		model:   model,
		baseOps: model.BaselineOps(),
		edges:   make(chan *Edge, cfg.Workers),
		started: time.Now(),
		acc:     costs.NewAccumulator(),
		lat:     control.NewHistogram(),
	}
	s.inWidth = 1
	for _, d := range model.Arch.Net.InShape {
		s.inWidth *= d
	}
	for i := 0; i < cfg.Workers; i++ {
		t, err := newTransport()
		if err != nil {
			return nil, err
		}
		e, err := NewGraph(g, t, edgeCfg)
		if err != nil {
			return nil, err
		}
		s.edges <- e
	}
	s.flightName = cfg.ModelName
	if s.flightName == "" {
		s.flightName = "edge"
	}
	s.flights = obs.NewFlightSet("edge", obs.FlightConfig{})
	s.flight = s.flights.Recorder(s.flightName)
	if cfg.SLO.Active() {
		ladder := edgeLadder(g.MaxDepth(), edgeCfg.SplitStage, cfg.SLO.AccuracyFloorDelta)
		ctrl, err := control.New(cfg.SLO, ladder, control.Config{Interval: cfg.ControlInterval})
		if err != nil {
			return nil, fmt.Errorf("edgecloud: SLO on split %d: %w", edgeCfg.SplitStage, err)
		}
		buckets := 10
		s.window = control.NewWindow(g.NumExits(), control.WindowConfig{
			Buckets: buckets, BucketDur: cfg.ControlWindow / time.Duration(buckets),
		})
		s.ctrl = ctrl
		s.alert = control.NewAlertMonitor(control.AlertConfig{})
		s.stopCtrl = make(chan struct{})
		s.ctrlDone = make(chan struct{})
		go s.controlLoop()
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/classify", s.handleClassify)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("GET /alertz", s.handleAlertz)
	s.mux.Handle("GET /debug/flightz", s.flights.Handler())
	s.slow = obs.NewSlowLog()
	s.handler = obs.Middleware(s.mux, s.slow)
	return s, nil
}

// edgeLadder restricts the control ladder to rungs an edge can actuate
// alone: the identity policy plus depth caps strictly below the split
// stage (a cap in the cloud's half cannot ride the δ-only offload wire).
// Rung 1 therefore already resolves every input locally — the edge's
// actuation is exactly its offload split.
func edgeLadder(maxDepth, splitStage int, floor float64) []core.ExitPolicy {
	full := control.Ladder(maxDepth, floor)
	out := full[:1:1]
	for _, p := range full[1:] {
		if p.MaxExit < splitStage {
			out = append(out, p)
		}
	}
	return out
}

// Handler returns the HTTP handler: the route mux wrapped in the tracing
// middleware (X-Trace-Id on every response, slow-request logging), exactly
// as on the cloud tier.
func (s *Server) Handler() http.Handler { return s.handler }

// Close stops the SLO control loop and flips /readyz to 503 (idempotent;
// the HTTP layer is the caller's to stop, as with serve.Server).
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		if s.stopCtrl != nil {
			close(s.stopCtrl)
			<-s.ctrlDone
		}
	})
}

// controlLoop ticks the offload-split controller until Close.
func (s *Server) controlLoop() {
	defer close(s.ctrlDone)
	t := time.NewTicker(s.cfg.ControlInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCtrl:
			return
		case <-t.C:
			s.controlTick()
		}
	}
}

// controlTick runs one telemetry → decision → actuation pass. The edge's
// queue-occupancy analogue is worker exhaustion: a slow cloud holds every
// Edge for its transport timeout, so busy-worker fraction is the earliest
// pressure signal.
func (s *Server) controlTick() {
	snap := s.window.Snapshot()
	sample := control.Sample{
		P99LatencyMS: snap.P99LatencyMS,
		QueueFrac:    float64(s.cfg.Workers-len(s.edges)) / float64(s.cfg.Workers),
		MeanEnergyPJ: snap.MeanEnergyPJ,
		Images:       snap.Images,
		Arrivals:     snap.Arrivals,
	}
	s.ctrlMu.Lock()
	dec := s.ctrl.Step(sample)
	s.lastSample, s.lastSnap = sample, snap
	s.ctrlMu.Unlock()
	s.ctrlRung.Store(int32(dec.Rung))
	if dec.Action == control.ActionShallow {
		// The controller just tightened the offload split — freeze the
		// flight evidence that drove the degradation.
		s.flight.Snapshot("rung_down", s.flightName, dec.Rung, snap.P99LatencyMS, time.Now().UnixNano())
	}
	cur := s.controlled.Load()
	if cur == nil || !cur.Equal(dec.Policy) {
		p := dec.Policy
		s.controlled.Store(&p)
	}
}

// FlightzHandler returns the /debug/flightz query handler for the admin
// listener (obs.AdminRoute).
func (s *Server) FlightzHandler() http.Handler { return s.flights.Handler() }

// AlertzHandler returns the /alertz burn-rate view for the admin
// listener.
func (s *Server) AlertzHandler() http.Handler { return http.HandlerFunc(s.handleAlertz) }

// AlertReport assembles the edge tier's /alertz document (empty Models
// when no SLO — an unmonitored edge never pages).
func (s *Server) AlertReport() control.AlertzReport {
	rep := control.AlertzReport{Tier: "edge", Models: make(map[string]control.AlertStatus)}
	if s.alert != nil {
		st := s.alert.Status()
		rep.Models[s.flightName] = st
		rep.Active = st.Active
	}
	return rep
}

func (s *Server) handleAlertz(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, http.StatusOK, s.AlertReport())
}

// liveP99 returns the cached window p99 (0 without an SLO window),
// re-snapshotting at most every 250ms.
func (s *Server) liveP99(nowNS int64) float64 {
	if s.window == nil {
		return 0
	}
	const refreshNS = int64(250 * time.Millisecond)
	if at := s.liveP99AtNS.Load(); nowNS-at > refreshNS && s.liveP99AtNS.CompareAndSwap(at, nowNS) {
		s.liveP99Bits.Store(math.Float64bits(s.window.Snapshot().P99LatencyMS))
	}
	return math.Float64frombits(s.liveP99Bits.Load())
}

// flightShed records one rejected or failed request (always
// tail-retained) and charges its images against the burn-rate monitor.
func (s *Server) flightShed(tr *obs.Trace, outcome, cause string, images int) {
	s.alert.Observe(0, int64(images))
	if !obs.FlightEnabled() {
		return
	}
	rec := obs.FlightRecord{
		Model:       s.flightName,
		Rung:        int(s.ctrlRung.Load()),
		ExitIndex:   -1,
		BatchSize:   images,
		Outcome:     outcome,
		RejectCause: cause,
		Anomalies:   []string{obs.AnomalyShed},
		StartUnixNS: time.Now().UnixNano(),
	}
	if outcome == obs.FlightError {
		rec.Anomalies = []string{obs.AnomalyError}
	}
	if tr != nil {
		rec.TraceID = tr.ID()
		rec.Spans = tr.Spans()
	}
	s.flight.Record(rec)
}

// observeFlight offers one finished request's images to the flight
// recorder and classifies them against the burn-rate monitor. The node
// path records which tier resolved each image — "edge" for local exits,
// "edge->cloud" for offloads.
func (s *Server) observeFlight(tr *obs.Trace, explicit bool, results []Result, elapsedMS float64) {
	if s.alert != nil {
		var good, bad int64
		for range results {
			if elapsedMS > s.cfg.SLO.P99LatencyMs {
				bad++
			} else {
				good++
			}
		}
		s.alert.Observe(good, bad)
	}
	if !obs.FlightEnabled() {
		return
	}
	now := time.Now()
	nowNS := now.UnixNano()
	p99 := s.liveP99(nowNS)
	deepest := s.graph.NumExits() - 1
	rung := int(s.ctrlRung.Load())
	source := "default"
	switch {
	case explicit:
		source = "explicit"
	case s.controlled.Load() != nil:
		source = "controller"
	}
	startNS := nowNS - int64(elapsedMS*float64(time.Millisecond))
	for _, res := range results {
		rec := obs.FlightRecord{
			Model:        s.flightName,
			Rung:         rung,
			PolicySource: source,
			ExitIndex:    res.Record.StageIndex,
			NodePath:     "edge",
			TotalMS:      elapsedMS,
			BatchSize:    len(results),
			EnergyPJ:     res.TotalPJ(),
			Outcome:      obs.FlightOK,
			StartUnixNS:  startNS,
		}
		if res.Offloaded {
			rec.NodePath = "edge->cloud"
		}
		if (p99 > 0 && elapsedMS > p99) || (s.alert != nil && elapsedMS > s.cfg.SLO.P99LatencyMs) {
			rec.Anomalies = append(rec.Anomalies, obs.AnomalyP99)
		}
		if res.Record.StageIndex == deepest {
			rec.Anomalies = append(rec.Anomalies, obs.AnomalyDeepExit)
		}
		if tr != nil {
			rec.TraceID = tr.ID()
			if len(rec.Anomalies) > 0 {
				rec.Spans = tr.Spans()
			}
		}
		s.flight.Record(rec)
	}
}

// controlStatus snapshots the controller (nil when no SLO is attached),
// in the same wire shape as the cloud registry's.
func (s *Server) controlStatus() *serve.ControlStatus {
	s.ctrlMu.Lock()
	defer s.ctrlMu.Unlock()
	if s.ctrl == nil {
		return nil
	}
	st := s.ctrl.State()
	delta := st.Policy.Delta
	if delta < 0 {
		if delta = s.edgeCfg.Delta; delta < 0 {
			delta = s.model.Delta
		}
	}
	return &serve.ControlStatus{
		Model:       s.cfg.ModelName,
		SLO:         st.SLO,
		Rung:        st.Rung,
		MaxRung:     st.MaxRung,
		Delta:       delta,
		MaxExit:     st.Policy.MaxExit,
		LastAction:  string(st.LastAction),
		Ticks:       st.Ticks,
		Violations:  st.Violations,
		RecoverHold: st.RecoverHold,
		QueueFrac:   s.lastSample.QueueFrac,
		Window:      s.lastSnap,
	}
}

// Stats is the edge /statsz payload.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Invalid       int64   `json:"invalid"`
	// Rejected counts requests shed with 503 because no edge worker
	// freed up within AcquireTimeout.
	Rejected int64 `json:"rejected"`
	// CloudErrors counts offloads that failed at the cloud tier (mapped
	// to 502 for the whole request).
	CloudErrors int64 `json:"cloud_errors"`
	Images      int64 `json:"images"`
	LocalExits  int64 `json:"local_exits"`
	Offloads    int64 `json:"offloads"`

	SplitStage int    `json:"split_stage"`
	Encoding   string `json:"encoding"`

	// Latency is the whole-request per-image latency (local exits and
	// cloud round trips alike) over the server's lifetime.
	Latency serve.LatencyStats `json:"latency"`

	// Tier is the tiered energy view: offload fraction, per-tier pJ,
	// wire bytes.
	Tier energy.TieredSummary `json:"tier"`

	// Control is the offload-split controller's state (absent without an
	// SLO).
	Control *serve.ControlStatus `json:"control,omitempty"`
}

// Stats snapshots the live counters.
func (s *Server) Stats() Stats {
	ctrl := s.controlStatus()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.requests,
		Invalid:       s.invalid,
		Rejected:      s.rejected,
		CloudErrors:   s.cloudErr,
		Images:        s.images,
		LocalExits:    s.local,
		Offloads:      s.offload,
		SplitStage:    s.edgeCfg.SplitStage,
		Encoding:      s.edgeCfg.Encoding.String(),
		Latency:       serve.SummarizeLatency(s.lat),
		Tier:          s.acc.Summary(),
		Control:       ctrl,
	}
}

func (s *Server) observeInvalid() {
	s.mu.Lock()
	s.invalid++
	s.mu.Unlock()
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.observeInvalid()
		serve.WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	maxBody := int64(s.cfg.MaxRequestImages)*int64(s.inWidth)*32 + 4096
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req serve.ClassifyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.observeInvalid()
		serve.WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	images, err := req.NormalizeImages(s.inWidth, s.cfg.MaxRequestImages, s.model.Arch.Net.InShape)
	if err != nil {
		s.observeInvalid()
		serve.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	delta, err := serve.ParseDeltaOverride(req.Delta)
	if err != nil {
		s.observeInvalid()
		serve.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Requests without an explicit δ inherit the offload-split
	// controller's current policy (identity = the configured split);
	// an explicit δ always bypasses the controller, as on the cloud
	// tier.
	pol := core.ExitPolicy{Delta: s.edgeCfg.Delta, MaxExit: -1}
	if req.Delta != nil {
		pol.Delta = delta
	} else if p := s.controlled.Load(); p != nil {
		pol.MaxExit = p.MaxExit
	}
	if s.window != nil {
		s.window.Arrivals(len(images))
	}
	start := time.Now()

	// Acquire a worker with a bounded wait: a slow cloud can hold every
	// edge for its transport timeout, and the backlog must be shed, not
	// queued unboundedly.
	var edge *Edge
	select {
	case edge = <-s.edges:
	default:
		timer := time.NewTimer(s.cfg.AcquireTimeout)
		defer timer.Stop()
		select {
		case edge = <-s.edges:
		case <-timer.C:
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			if s.window != nil {
				s.window.Sheds(len(images))
			}
			s.flightShed(obs.FromContext(r.Context()), obs.FlightShed, "workers_busy", len(images))
			serve.WriteShed(w, "all edge workers busy")
			return
		}
	}
	defer func() { s.edges <- edge }()
	tr := obs.FromContext(r.Context())
	if tr != nil {
		edge.AttachTrace(tr)
		// Detach runs before the worker returns to the pool (LIFO defers).
		defer edge.AttachTrace(nil)
	}

	xs := make([]*tensor.T, len(images))
	for i, img := range images {
		xs[i] = tensor.FromSlice(img, s.model.Arch.Net.InShape...)
	}
	// One batched cloud round trip for all of this request's offloads
	// (HTTPTransport implements BatchTransport).
	results, err := edge.ClassifyBatchPolicy(xs, pol)
	if err != nil {
		s.mu.Lock()
		s.cloudErr++
		s.mu.Unlock()
		s.flightShed(tr, obs.FlightError, "cloud_error", len(images))
		serve.WriteError(w, http.StatusBadGateway, err.Error())
		return
	}
	elapsedMS := float64(time.Since(start)) / float64(time.Millisecond)

	s.mu.Lock()
	s.requests++
	for _, res := range results {
		s.images++
		if res.Offloaded {
			s.offload++
		} else {
			s.local++
		}
		s.lat.Observe(elapsedMS)
		// Records validated by Edge.ClassifyDelta against the same model.
		_ = s.acc.Add(res.Record, res.WireBytes)
	}
	s.mu.Unlock()
	if s.window != nil {
		samples := make([]control.Obs, len(results))
		for i, res := range results {
			samples[i] = control.Obs{LatencyMS: elapsedMS, ExitIndex: res.Record.StageIndex, EnergyPJ: res.TotalPJ()}
		}
		s.window.ObserveBatch(samples)
	}
	s.observeFlight(tr, req.Delta != nil, results, elapsedMS)

	resp := serve.ClassifyResponse{Results: make([]serve.ClassifyResult, len(results)), Count: len(results)}
	for i, res := range results {
		rec := res.Record
		out := serve.ClassifyResult{
			Label:      rec.Label,
			Exit:       rec.StageName,
			ExitIndex:  rec.StageIndex,
			Confidence: rec.Confidence,
			Ops:        rec.Ops,
			// Whole-system energy: edge compute + link + cloud compute —
			// a monolithic server reports the same exit's pipeline energy,
			// an edge front adds the transmission surcharge.
			EnergyPJ: res.TotalPJ(),
		}
		if s.baseOps > 0 {
			out.NormalizedOps = rec.Ops / s.baseOps
		}
		resp.Results[i] = out
	}
	if tr != nil && tr.Propagated() {
		// The client opted in by sending X-Trace-Id: return the stitched
		// cross-tier timeline (edge prefix, offload hop, cloud spans).
		resp.TraceID = tr.ID()
		resp.Spans = tr.Spans()
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

// healthResponse is the edge /healthz payload.
type healthResponse struct {
	Status        string  `json:"status"`
	Role          string  `json:"role"`
	Model         string  `json:"model,omitempty"`
	Arch          string  `json:"arch"`
	Stages        int     `json:"stages"`
	SplitStage    int     `json:"split_stage"`
	Delta         float64 `json:"delta"`
	Encoding      string  `json:"encoding"`
	Cloud         string  `json:"cloud,omitempty"`
	CloudModel    string  `json:"cloud_model,omitempty"`
	Workers       int     `json:"workers"`
	SLO           string  `json:"slo,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	delta := s.edgeCfg.Delta
	if delta < 0 {
		delta = s.model.Delta
	}
	serve.WriteJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		Role:          "edge",
		Model:         s.cfg.ModelName,
		Arch:          s.model.Arch.Name,
		Stages:        len(s.model.Stages),
		SplitStage:    s.edgeCfg.SplitStage,
		Delta:         delta,
		Encoding:      s.edgeCfg.Encoding.String(),
		Cloud:         s.cfg.CloudURL,
		CloudModel:    s.cfg.CloudModel,
		Workers:       s.cfg.Workers,
		SLO:           s.cfg.SLO.String(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, http.StatusOK, s.Stats())
}

// handleReadyz is the readiness probe: an edge front builds its whole
// worker pool before serving, so it is ready from construction until
// Close. /healthz stays pure liveness.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		serve.WriteJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
		return
	}
	serve.WriteJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

// handleMetricsz is the edge tier's Prometheus-text exposition: request
// and offload counters, the tiered (edge/link/cloud) energy split, the
// whole-request latency histogram and the offload-split controller state.
// Label values come only from fixed vocabulary (tier names), never request
// content.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	ctrl := s.controlStatus() // ctrlMu domain — fetch outside s.mu
	busy := float64(s.cfg.Workers - len(s.edges))
	p := obs.NewProm()
	p.Gauge("cdl_build_info", "Build identity (constant 1; the identity lives in the labels).", obs.BuildInfoLabels("edge"), 1)
	p.Gauge("cdl_uptime_seconds", "Seconds since the edge front started.", nil, time.Since(s.started).Seconds())
	p.Gauge("cdl_tracing_enabled", "Whether request tracing is on (1) or off (0).", nil, func() float64 {
		if obs.Enabled() {
			return 1
		}
		return 0
	}())
	p.Gauge("cdl_flight_enabled", "Whether the flight recorder is on (1) or off (0).", nil, func() float64 {
		if obs.FlightEnabled() {
			return 1
		}
		return 0
	}())
	p.Gauge("cdl_edge_workers", "Warm edge runtimes.", nil, float64(s.cfg.Workers))
	p.Gauge("cdl_edge_busy_workers", "Edge runtimes currently holding a request (the edge's queue-pressure signal).", nil, busy)

	s.mu.Lock()
	tier := s.acc.Summary()
	p.Counter("cdl_edge_requests_total", "Classify requests admitted.", nil, float64(s.requests))
	p.Counter("cdl_edge_invalid_requests_total", "Requests rejected with 4xx.", nil, float64(s.invalid))
	p.Counter("cdl_edge_rejected_total", "Requests shed with 503 + Retry-After (no worker freed within the acquire timeout).", nil, float64(s.rejected))
	p.Counter("cdl_edge_cloud_errors_total", "Offloads that failed at the cloud tier (502 for the whole request).", nil, float64(s.cloudErr))
	p.Counter("cdl_edge_images_total", "Images classified.", nil, float64(s.images))
	p.Counter("cdl_edge_local_exits_total", "Images resolved by the local prefix cascade.", nil, float64(s.local))
	p.Counter("cdl_edge_offloads_total", "Images shipped across the link as intermediate activations.", nil, float64(s.offload))
	p.Gauge("cdl_edge_split_stage", "Cascade stages the edge owns.", nil, float64(s.edgeCfg.SplitStage))
	p.Gauge("cdl_edge_offload_fraction", "Fraction of images that crossed the link.", nil, tier.OffloadFraction)
	p.Counter("cdl_edge_wire_bytes_total", "Total encoded payload bytes shipped.", nil, float64(tier.WireBytes))
	p.Counter("cdl_tier_energy_pj_total", "Cumulative 45 nm energy by tier (edge compute, link transfer, cloud compute).", obs.Labels{{"tier", "edge"}}, tier.EdgePJ)
	p.Counter("cdl_tier_energy_pj_total", "", obs.Labels{{"tier", "link"}}, tier.LinkPJ)
	p.Counter("cdl_tier_energy_pj_total", "", obs.Labels{{"tier", "cloud"}}, tier.CloudPJ)
	p.Gauge("cdl_energy_pj_per_image", "Mean whole-system energy per image (pJ), link surcharge included.", nil, tier.MeanTotalPJ)
	bounds, counts, sum, total := s.lat.Export(8)
	p.Histogram("cdl_edge_latency_ms", "Whole-request per-image latency (local exits and cloud round trips alike), milliseconds.", nil, bounds, counts, sum, total)
	s.mu.Unlock()

	if ctrl != nil {
		p.Gauge("cdl_control_rung", "Offload-split controller's current actuation rung (0 = configured split).", nil, float64(ctrl.Rung))
		p.Gauge("cdl_control_max_rung", "Deepest actuation rung the controller may take.", nil, float64(ctrl.MaxRung))
		p.Gauge("cdl_control_max_exit", "Current depth cap (-1 = none).", nil, float64(ctrl.MaxExit))
		p.Gauge("cdl_control_queue_frac", "Busy-worker fraction at the controller's last tick.", nil, ctrl.QueueFrac)
		p.Counter("cdl_control_violations_total", "Controller ticks that observed an SLO violation.", nil, float64(ctrl.Violations))
	}
	if s.alert != nil {
		st := s.alert.Status()
		active := 0.0
		if st.Active {
			active = 1
		}
		p.Gauge("cdl_alert_active", "Whether any burn-rate window is firing (the page signal).", nil, active)
		p.Gauge("cdl_alert_fast_burn_rate", "Error-budget burn rate over the fast window (1.0 = exactly on budget).", nil, st.Fast.BurnRate)
		p.Gauge("cdl_alert_slow_burn_rate", "Error-budget burn rate over the slow window.", nil, st.Slow.BurnRate)
		p.Counter("cdl_alert_bad_total", "Requests that burned error budget (latency above target, or shed).", nil, float64(st.TotalBad))
		p.Counter("cdl_alert_good_total", "Requests that met the latency target.", nil, float64(st.TotalGood))
	}
	fst := s.flight.Stats()
	p.Counter("cdl_flight_seen_total", "Requests offered to the flight recorder.", nil, float64(fst.Seen))
	p.Counter("cdl_flight_anomalous_total", "Requests tail-retained with full span trees.", nil, float64(fst.Anomalous))
	p.Gauge("cdl_flight_buffered", "Records currently live in the flight ring.", nil, float64(fst.Buffered))
	w.Header().Set("Content-Type", obs.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = p.WriteTo(w)
}

// ListenAndServe runs the edge front on addr until stop is closed, then
// shuts down gracefully, with the same slow-client hardening as the cloud
// server (serve.ListenHardened). The SLO control loop (when configured)
// stops with the HTTP layer.
func (s *Server) ListenAndServe(addr string, stop <-chan struct{}) error {
	hard := serve.HTTPHardening{
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
		MaxHeaderBytes:    s.cfg.MaxHeaderBytes,
	}
	return serve.ListenHardened(addr, s.handler, stop, hard, s.Close)
}
