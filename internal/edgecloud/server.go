package edgecloud

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"cdl/internal/core"
	"cdl/internal/energy"
	"cdl/internal/serve"
	"cdl/internal/tensor"
)

// ServerConfig sizes the edge HTTP front.
type ServerConfig struct {
	// Workers is the number of warm Edge runtimes (each with a private
	// session and transport). Default GOMAXPROCS.
	Workers int
	// MaxRequestImages caps the images accepted in one request. Default
	// 256.
	MaxRequestImages int
	// ModelName is reported by /healthz.
	ModelName string
	// CloudURL is reported by /healthz (informational; the transports
	// decide where offloads actually go).
	CloudURL string
	// CloudModel is the named cloud registry entry offloads resume on
	// (informational here, like CloudURL: build the transports with
	// NewHTTPModelTransport to actually target it). Empty means the
	// cloud's default model — one multi-model cloud tier can back many
	// edge fronts, each split against its own named cascade.
	CloudModel string
	// AcquireTimeout is how long a request may wait for a free edge
	// worker before being shed with 503 — with a slow cloud each offload
	// can hold a worker for the transport's full timeout, and an edge
	// node must shed that backlog rather than queue unboundedly (the
	// same philosophy as serve's bounded queue). Default 1s.
	AcquireTimeout time.Duration

	// ReadHeaderTimeout/IdleTimeout/MaxHeaderBytes harden ListenAndServe
	// exactly as in serve.Config. Defaults 5s / 60s / 64 KiB.
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration
	MaxHeaderBytes    int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxRequestImages <= 0 {
		c.MaxRequestImages = 256
	}
	if c.AcquireTimeout == 0 {
		c.AcquireTimeout = time.Second
	}
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.MaxHeaderBytes <= 0 {
		c.MaxHeaderBytes = 64 << 10
	}
	return c
}

// Server is the edge node's HTTP front. It speaks the same /v1/classify
// JSON schema as the monolithic serve.Server — a client cannot tell an
// edge front from a full backend — but answers locally only when the
// prefix cascade exits, forwarding the hard residue to the cloud tier.
//
// Endpoints:
//
//	POST /v1/classify  same schema as serve; per-request δ forwarded on offload
//	GET  /healthz      liveness, model identity, split point, cloud target
//	GET  /statsz       offload fraction and tiered (edge/link/cloud) energy
type Server struct {
	cfg      ServerConfig
	edgeCfg  Config
	model    *core.CDLN
	inWidth  int
	baseOps  float64
	edges    chan *Edge
	mux      *http.ServeMux
	started  time.Time
	mu       sync.Mutex
	acc      *energy.TieredAccumulator
	requests int64
	invalid  int64
	rejected int64
	cloudErr int64
	images   int64
	local    int64
	offload  int64
}

// NewServer builds cfg.Workers Edge runtimes, each with its own transport
// from newTransport (transports with per-connection state must not be
// shared across workers; an HTTPTransport may simply be returned
// repeatedly).
func NewServer(model *core.CDLN, newTransport func() (Transport, error), edgeCfg Config, cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := model.Validate(); err != nil {
		return nil, err
	}
	edgeCfg = edgeCfg.withDefaults()
	costs, err := energy.NewEvaluator().TierCosts(model, edgeCfg.SplitStage, edgeCfg.Link)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		edgeCfg: edgeCfg,
		model:   model,
		baseOps: model.BaselineOps(),
		edges:   make(chan *Edge, cfg.Workers),
		started: time.Now(),
		acc:     costs.NewAccumulator(),
	}
	s.inWidth = 1
	for _, d := range model.Arch.Net.InShape {
		s.inWidth *= d
	}
	for i := 0; i < cfg.Workers; i++ {
		t, err := newTransport()
		if err != nil {
			return nil, err
		}
		e, err := New(model, t, edgeCfg)
		if err != nil {
			return nil, err
		}
		s.edges <- e
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/classify", s.handleClassify)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	return s, nil
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats is the edge /statsz payload.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Invalid       int64   `json:"invalid"`
	// Rejected counts requests shed with 503 because no edge worker
	// freed up within AcquireTimeout.
	Rejected int64 `json:"rejected"`
	// CloudErrors counts offloads that failed at the cloud tier (mapped
	// to 502 for the whole request).
	CloudErrors int64 `json:"cloud_errors"`
	Images      int64 `json:"images"`
	LocalExits  int64 `json:"local_exits"`
	Offloads    int64 `json:"offloads"`

	SplitStage int    `json:"split_stage"`
	Encoding   string `json:"encoding"`

	// Tier is the tiered energy view: offload fraction, per-tier pJ,
	// wire bytes.
	Tier energy.TieredSummary `json:"tier"`
}

// Stats snapshots the live counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.requests,
		Invalid:       s.invalid,
		Rejected:      s.rejected,
		CloudErrors:   s.cloudErr,
		Images:        s.images,
		LocalExits:    s.local,
		Offloads:      s.offload,
		SplitStage:    s.edgeCfg.SplitStage,
		Encoding:      s.edgeCfg.Encoding.String(),
		Tier:          s.acc.Summary(),
	}
}

func (s *Server) observeInvalid() {
	s.mu.Lock()
	s.invalid++
	s.mu.Unlock()
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.observeInvalid()
		serve.WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	maxBody := int64(s.cfg.MaxRequestImages)*int64(s.inWidth)*32 + 4096
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req serve.ClassifyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.observeInvalid()
		serve.WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	images, err := req.NormalizeImages(s.inWidth, s.cfg.MaxRequestImages, s.model.Arch.Net.InShape)
	if err != nil {
		s.observeInvalid()
		serve.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	delta, err := serve.ParseDeltaOverride(req.Delta)
	if err != nil {
		s.observeInvalid()
		serve.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if delta < 0 {
		delta = s.edgeCfg.Delta
	}

	// Acquire a worker with a bounded wait: a slow cloud can hold every
	// edge for its transport timeout, and the backlog must be shed, not
	// queued unboundedly.
	var edge *Edge
	select {
	case edge = <-s.edges:
	default:
		timer := time.NewTimer(s.cfg.AcquireTimeout)
		defer timer.Stop()
		select {
		case edge = <-s.edges:
		case <-timer.C:
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			serve.WriteError(w, http.StatusServiceUnavailable, "all edge workers busy")
			return
		}
	}
	defer func() { s.edges <- edge }()

	xs := make([]*tensor.T, len(images))
	for i, img := range images {
		xs[i] = tensor.FromSlice(img, s.model.Arch.Net.InShape...)
	}
	// One batched cloud round trip for all of this request's offloads
	// (HTTPTransport implements BatchTransport).
	results, err := edge.ClassifyBatch(xs, delta)
	if err != nil {
		s.mu.Lock()
		s.cloudErr++
		s.mu.Unlock()
		serve.WriteError(w, http.StatusBadGateway, err.Error())
		return
	}

	s.mu.Lock()
	s.requests++
	for _, res := range results {
		s.images++
		if res.Offloaded {
			s.offload++
		} else {
			s.local++
		}
		// Records validated by Edge.ClassifyDelta against the same model.
		_ = s.acc.Add(res.Record, res.WireBytes)
	}
	s.mu.Unlock()

	resp := serve.ClassifyResponse{Results: make([]serve.ClassifyResult, len(results)), Count: len(results)}
	for i, res := range results {
		rec := res.Record
		out := serve.ClassifyResult{
			Label:      rec.Label,
			Exit:       rec.StageName,
			ExitIndex:  rec.StageIndex,
			Confidence: rec.Confidence,
			Ops:        rec.Ops,
			// Whole-system energy: edge compute + link + cloud compute —
			// a monolithic server reports the same exit's pipeline energy,
			// an edge front adds the transmission surcharge.
			EnergyPJ: res.TotalPJ(),
		}
		if s.baseOps > 0 {
			out.NormalizedOps = rec.Ops / s.baseOps
		}
		resp.Results[i] = out
	}
	serve.WriteJSON(w, http.StatusOK, resp)
}

// healthResponse is the edge /healthz payload.
type healthResponse struct {
	Status        string  `json:"status"`
	Role          string  `json:"role"`
	Model         string  `json:"model,omitempty"`
	Arch          string  `json:"arch"`
	Stages        int     `json:"stages"`
	SplitStage    int     `json:"split_stage"`
	Delta         float64 `json:"delta"`
	Encoding      string  `json:"encoding"`
	Cloud         string  `json:"cloud,omitempty"`
	CloudModel    string  `json:"cloud_model,omitempty"`
	Workers       int     `json:"workers"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	delta := s.edgeCfg.Delta
	if delta < 0 {
		delta = s.model.Delta
	}
	serve.WriteJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		Role:          "edge",
		Model:         s.cfg.ModelName,
		Arch:          s.model.Arch.Name,
		Stages:        len(s.model.Stages),
		SplitStage:    s.edgeCfg.SplitStage,
		Delta:         delta,
		Encoding:      s.edgeCfg.Encoding.String(),
		Cloud:         s.cfg.CloudURL,
		CloudModel:    s.cfg.CloudModel,
		Workers:       s.cfg.Workers,
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, http.StatusOK, s.Stats())
}

// ListenAndServe runs the edge front on addr until stop is closed, then
// shuts down gracefully, with the same slow-client hardening as the cloud
// server (serve.ListenHardened).
func (s *Server) ListenAndServe(addr string, stop <-chan struct{}) error {
	hard := serve.HTTPHardening{
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
		MaxHeaderBytes:    s.cfg.MaxHeaderBytes,
	}
	return serve.ListenHardened(addr, s.mux, stop, hard, nil)
}
