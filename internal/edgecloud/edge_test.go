package edgecloud

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cdl/internal/core"
	"cdl/internal/edgecloud/wire"
	"cdl/internal/energy"
	"cdl/internal/nn"
	"cdl/internal/serve"
	"cdl/internal/tensor"
	"cdl/internal/train"
)

// testCDLN trains the small two-tap blob cascade shared with the core and
// serve test suites: 12×12 inputs, 3 classes, a hard noise tail so the
// exit mix spans the cascade.
func testCDLN(t testing.TB, seed int64) (*core.CDLN, []train.Sample) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork([]int{1, 12, 12},
		nn.NewConv2D("C1", 1, 2, 3),
		nn.NewSigmoid("C1.act"),
		nn.NewMaxPool2D("P1", 2),
		nn.NewConv2D("C2", 2, 3, 2),
		nn.NewSigmoid("C2.act"),
		nn.NewMaxPool2D("P2", 2),
		nn.NewFlatten("flat"),
		nn.NewDense("FC", 3*2*2, 3),
		nn.NewSigmoid("FC.act"),
	)
	nn.InitNetwork(net, rng)
	arch := &nn.Arch{
		Name: "edge-test", Net: net,
		Taps: []int{3, 6}, TapNames: []string{"P1", "P2"},
		NumClasses: 3,
	}
	data := blobData(180, seed+1)
	cfg := train.Defaults(3)
	cfg.Epochs = 12
	cfg.BatchSize = 10
	if _, err := train.SGD(arch.Net, data, cfg); err != nil {
		t.Fatal(err)
	}
	bcfg := core.DefaultBuildConfig()
	bcfg.ForceAllStages = true
	cdln, _, err := core.Build(arch, data, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	return cdln, data
}

func blobData(n int, seed int64) []train.Sample {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]int{{3, 3}, {3, 8}, {8, 5}}
	out := make([]train.Sample, n)
	for i := range out {
		label := i % 3
		noise := 0.05
		if rng.Float64() < 0.3 {
			noise = 0.35
		}
		x := tensor.New(1, 12, 12)
		cy, cx := centers[label][0], centers[label][1]
		for y := 0; y < 12; y++ {
			for xx := 0; xx < 12; xx++ {
				d2 := float64((y-cy)*(y-cy) + (xx-cx)*(xx-cx))
				v := 1/(1+d2/3) + rng.NormFloat64()*noise
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				x.Data[y*12+xx] = v
			}
		}
		out[i] = train.Sample{X: x, Label: label}
	}
	return out
}

func sameRecord(a, b core.ExitRecord) bool {
	return a.StageIndex == b.StageIndex && a.StageName == b.StageName &&
		a.Label == b.Label && a.Confidence == b.Confidence && a.Ops == b.Ops
}

// TestEdgeLoopbackIdentity is the subsystem-level identity check: with the
// lossless encoding, the full edge pipeline (prefix → wire encode → decode
// → resume) must agree bit-for-bit with monolithic classification for
// every split stage and δ, and the per-tier energies must sum to the
// monolithic exit energy.
func TestEdgeLoopbackIdentity(t *testing.T) {
	cdln, data := testCDLN(t, 51)
	mono, err := core.NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	exits := energy.NewEvaluator().ExitEnergies(cdln)
	for _, delta := range []float64{-1, 0.9} {
		for split := 0; split <= len(cdln.Stages); split++ {
			lb, err := NewLoopback(cdln)
			if err != nil {
				t.Fatal(err)
			}
			edge, err := New(cdln, lb, Config{SplitStage: split, Delta: -1})
			if err != nil {
				t.Fatal(err)
			}
			offloads := 0
			for i, s := range data {
				want := mono.ClassifyDelta(s.X, delta)
				res, err := edge.ClassifyDelta(s.X, delta)
				if err != nil {
					t.Fatal(err)
				}
				if !sameRecord(res.Record, want) {
					t.Fatalf("split %d δ=%v sample %d: edge %+v != monolithic %+v",
						split, delta, i, res.Record, want)
				}
				if res.Offloaded != (want.StageIndex >= split) {
					t.Fatalf("split %d sample %d: offloaded=%v for exit %d", split, i, res.Offloaded, want.StageIndex)
				}
				if res.Offloaded {
					offloads++
					if res.WireBytes == 0 || res.LinkPJ == 0 {
						t.Fatalf("split %d: offload with no wire cost: %+v", split, res)
					}
				} else if res.WireBytes != 0 || res.LinkPJ != 0 || res.CloudPJ != 0 {
					t.Fatalf("split %d: local exit charged remote costs: %+v", split, res)
				}
				if got := res.EdgePJ + res.CloudPJ; got != exits[want.StageIndex] {
					t.Fatalf("split %d: edge %v + cloud %v != monolithic %v pJ",
						split, res.EdgePJ, res.CloudPJ, exits[want.StageIndex])
				}
			}
			if split == 0 && offloads != len(data) {
				t.Fatalf("split 0: %d/%d offloads", offloads, len(data))
			}
		}
	}
}

// TestEdgeQuantizedLink runs the fixed-point wire: payloads must shrink to
// roughly a quarter of the lossless size and predictions must stay close
// to monolithic (quantization noise on a [0,1] sigmoid activation at Q2.13
// resolution is tiny, but identity is no longer guaranteed).
func TestEdgeQuantizedLink(t *testing.T) {
	cdln, data := testCDLN(t, 52)
	mono, err := core.NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := NewLoopback(cdln)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := New(cdln, lb, Config{SplitStage: 1, Delta: -1, Encoding: wire.EncodingFixed})
	if err != nil {
		t.Fatal(err)
	}
	agree, offloads := 0, 0
	var fixedBytes int
	const strict = 0.9 // force offloads past the easy-exit thresholds
	for _, s := range data {
		want := mono.ClassifyDelta(s.X, strict)
		res, err := edge.ClassifyDelta(s.X, strict)
		if err != nil {
			t.Fatal(err)
		}
		if res.Offloaded {
			offloads++
			fixedBytes = res.WireBytes
		}
		if res.Record.Label == want.Label {
			agree++
		}
	}
	if offloads == 0 {
		t.Fatal("no offloads; fixture degenerate")
	}
	shape := cdln.Arch.Net.ShapeAt(cdln.SplitPos(1))
	numel := 1
	for _, d := range shape {
		numel *= d
	}
	lossless := wire.EncodedSize(len(shape), numel, wire.EncodingFloat64)
	if fixedBytes >= lossless/3 {
		t.Errorf("fixed payload %d B not ~4x smaller than lossless %d B", fixedBytes, lossless)
	}
	if frac := float64(agree) / float64(len(data)); frac < 0.95 {
		t.Errorf("quantized-link label agreement %.2f below 0.95", frac)
	}
}

// TestEdgeServerEndToEnd drives the full two-tier deployment over real
// HTTP: a cloud serve.Server, an edge Server offloading to it via
// HTTPTransport, and a client speaking the plain classify schema to the
// edge. Results must match monolithic evaluation; the tier counters must
// reconcile.
func TestEdgeServerEndToEnd(t *testing.T) {
	cdln, data := testCDLN(t, 53)
	res, err := core.Evaluate(cdln, data, 0, true)
	if err != nil {
		t.Fatal(err)
	}

	cloud, err := serve.New(cdln, serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cloudTS := httptest.NewServer(cloud.Handler())
	t.Cleanup(func() { cloudTS.Close(); cloud.Close() })

	edgeSrv, err := NewServer(cdln,
		func() (Transport, error) { return NewHTTPTransport(cloudTS.URL), nil },
		Config{SplitStage: 1, Delta: -1},
		ServerConfig{Workers: 2, CloudURL: cloudTS.URL})
	if err != nil {
		t.Fatal(err)
	}
	edgeTS := httptest.NewServer(edgeSrv.Handler())
	t.Cleanup(edgeTS.Close)

	req := serve.ClassifyRequest{}
	for _, s := range data[:60] {
		req.Images = append(req.Images, s.X.Flatten().Data)
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(edgeTS.URL+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	var out serve.ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 60 {
		t.Fatalf("count %d, want 60", out.Count)
	}
	for i, got := range out.Results {
		want := res.Records[i]
		if got.Label != want.Label || got.Exit != want.StageName ||
			got.ExitIndex != want.StageIndex || got.Confidence != want.Confidence {
			t.Fatalf("sample %d: edge-served %+v != monolithic %+v", i, got, want)
		}
		if got.EnergyPJ <= 0 {
			t.Fatalf("sample %d: no energy reported", i)
		}
	}

	st := edgeSrv.Stats()
	if st.Images != 60 || st.LocalExits+st.Offloads != 60 {
		t.Fatalf("edge stats %+v do not reconcile", st)
	}
	if st.Tier.Count != 60 || st.Tier.OffloadFraction != float64(st.Offloads)/60 {
		t.Fatalf("tier summary %+v does not reconcile", st.Tier)
	}
	if st.Offloads > 0 && (st.Tier.LinkPJ <= 0 || st.Tier.WireBytes <= 0) {
		t.Fatalf("offloads charged no link cost: %+v", st.Tier)
	}

	// Cloud side saw exactly the offloaded residue.
	cst := cloud.Stats()
	if cst.Images != st.Offloads {
		t.Fatalf("cloud served %d images, edge offloaded %d", cst.Images, st.Offloads)
	}
	if cst.ResumeRequests != st.Offloads {
		t.Fatalf("cloud resume requests %d, want %d", cst.ResumeRequests, st.Offloads)
	}

	// healthz reports the edge role and split.
	hr, err := http.Get(edgeTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["role"] != "edge" || h["split_stage"] != float64(1) || h["arch"] != "edge-test" {
		t.Errorf("healthz %v", h)
	}
}

// TestEdgeServerCloudDown maps transport failures to 502 and counts them.
func TestEdgeServerCloudDown(t *testing.T) {
	cdln, data := testCDLN(t, 54)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	edgeSrv, err := NewServer(cdln,
		func() (Transport, error) { return NewHTTPTransport(dead.URL), nil },
		Config{SplitStage: 0, Delta: -1}, // split 0: every input must offload
		ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(edgeSrv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(serve.ClassifyRequest{Image: data[0].X.Flatten().Data})
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("HTTP %d, want 502", resp.StatusCode)
	}
	if st := edgeSrv.Stats(); st.CloudErrors != 1 {
		t.Errorf("cloud_errors %d, want 1", st.CloudErrors)
	}
}

// TestEdgeServerBadRequests covers the edge front's 4xx paths.
func TestEdgeServerBadRequests(t *testing.T) {
	cdln, data := testCDLN(t, 55)
	lbFactory := func() (Transport, error) { return NewLoopback(cdln) }
	edgeSrv, err := NewServer(cdln, lbFactory, Config{SplitStage: 1, Delta: -1},
		ServerConfig{Workers: 1, MaxRequestImages: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(edgeSrv.Handler())
	defer ts.Close()

	good := data[0].X.Flatten().Data
	bad := 1.5
	cases := []struct {
		name string
		req  serve.ClassifyRequest
	}{
		{"empty", serve.ClassifyRequest{}},
		{"wrong width", serve.ClassifyRequest{Image: []float64{1, 2}}},
		{"both forms", serve.ClassifyRequest{Image: good, Images: [][]float64{good}}},
		{"bad delta", serve.ClassifyRequest{Image: good, Delta: &bad}},
		{"too many", serve.ClassifyRequest{Images: [][]float64{good, good, good}}},
	}
	for _, tc := range cases {
		body, _ := json.Marshal(tc.req)
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: HTTP %d, want 405", resp.StatusCode)
	}
	if st := edgeSrv.Stats(); st.Invalid == 0 {
		t.Error("invalid counter not incremented")
	}
}

// countingBatchTransport wraps a Loopback, counting single and batched
// resume calls and implementing BatchTransport on top of it.
type countingBatchTransport struct {
	lb      *Loopback
	singles int
	batches int
}

func (c *countingBatchTransport) Resume(p []byte, d float64) (core.ExitRecord, error) {
	c.singles++
	return c.lb.Resume(p, d)
}

func (c *countingBatchTransport) ResumeBatch(ps [][]byte, d float64) ([]core.ExitRecord, error) {
	c.batches++
	recs := make([]core.ExitRecord, len(ps))
	for i, p := range ps {
		rec, err := c.lb.Resume(p, d)
		if err != nil {
			return nil, err
		}
		recs[i] = rec
	}
	return recs, nil
}

// TestClassifyBatchUsesBatchTransport checks that a batch's offloads
// travel through one ResumeBatch call, with results bit-identical to the
// per-input path and in input order.
func TestClassifyBatchUsesBatchTransport(t *testing.T) {
	cdln, data := testCDLN(t, 57)
	mono, err := core.NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := NewLoopback(cdln)
	if err != nil {
		t.Fatal(err)
	}
	ct := &countingBatchTransport{lb: lb}
	edge, err := New(cdln, ct, Config{SplitStage: 1, Delta: -1})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*tensor.T, 40)
	for i := range xs {
		xs[i] = data[i].X
	}
	const strict = 0.9 // force a local/offload mix
	results, err := edge.ClassifyBatch(xs, strict)
	if err != nil {
		t.Fatal(err)
	}
	offloads := 0
	for i, res := range results {
		want := mono.ClassifyDelta(xs[i], strict)
		if !sameRecord(res.Record, want) {
			t.Fatalf("sample %d: batch %+v != monolithic %+v", i, res.Record, want)
		}
		if res.Offloaded {
			offloads++
		}
	}
	if offloads == 0 {
		t.Fatal("no offloads; fixture degenerate")
	}
	if ct.singles != 0 || ct.batches != 1 {
		t.Fatalf("transport saw %d single + %d batch calls, want 0 + 1", ct.singles, ct.batches)
	}

	// A non-batch transport still works, one round trip per offload.
	edge2, err := New(cdln, lb, Config{SplitStage: 1, Delta: -1})
	if err != nil {
		t.Fatal(err)
	}
	results2, err := edge2.ClassifyBatch(xs, strict)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results2 {
		if !sameRecord(results2[i].Record, results[i].Record) {
			t.Fatalf("sample %d: plain-transport batch diverged", i)
		}
	}
}

// blockingTransport parks every Resume until released, signalling entry.
type blockingTransport struct {
	entered chan struct{}
	release chan struct{}
	lb      *Loopback
}

func (b *blockingTransport) Resume(p []byte, d float64) (core.ExitRecord, error) {
	b.entered <- struct{}{}
	<-b.release
	return b.lb.Resume(p, d)
}

// TestEdgeServerShedsWhenBusy pins the load-shedding path: with one worker
// stuck on a slow cloud, a second request must be rejected with 503 within
// AcquireTimeout instead of queueing unboundedly.
func TestEdgeServerShedsWhenBusy(t *testing.T) {
	cdln, data := testCDLN(t, 58)
	lb, err := NewLoopback(cdln)
	if err != nil {
		t.Fatal(err)
	}
	bt := &blockingTransport{entered: make(chan struct{}, 1), release: make(chan struct{}), lb: lb}
	edgeSrv, err := NewServer(cdln,
		func() (Transport, error) { return bt, nil },
		Config{SplitStage: 0, Delta: -1}, // split 0: every input offloads
		ServerConfig{Workers: 1, AcquireTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(edgeSrv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(serve.ClassifyRequest{Image: data[0].X.Flatten().Data})
	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		firstDone <- err
	}()
	<-bt.entered // the lone worker is now parked inside the cloud call

	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("busy server: HTTP %d, want 503", resp.StatusCode)
	}

	close(bt.release)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	st := edgeSrv.Stats()
	if st.Rejected != 1 {
		t.Errorf("rejected %d, want 1", st.Rejected)
	}
	if st.Images != 1 {
		t.Errorf("images %d, want 1 (the shed request must not be classified)", st.Images)
	}
}

// TestNewValidation covers Edge constructor rejection.
func TestNewValidation(t *testing.T) {
	cdln, _ := testCDLN(t, 56)
	lb, err := NewLoopback(cdln)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cdln, nil, Config{SplitStage: 1}); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := New(cdln, lb, Config{SplitStage: -1}); err == nil {
		t.Error("negative split accepted")
	}
	if _, err := New(cdln, lb, Config{SplitStage: len(cdln.Stages) + 1}); err == nil {
		t.Error("too-deep split accepted")
	}
	if _, err := New(cdln, lb, Config{SplitStage: 1, Delta: 1.5}); err == nil {
		t.Error("delta > 1 accepted")
	}
	if _, err := New(cdln, lb, Config{SplitStage: 1, Encoding: wire.Encoding(9)}); err == nil {
		t.Error("unknown encoding accepted")
	}
}
