package edgecloud

// control_test.go covers the edge tier's SLO integration: the
// policy-aware split pipeline (ClassifyBatchPolicy), the restricted
// actuation ladder, and the offload-split controller adapting an edge
// front end to end.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cdl/internal/control"
	"cdl/internal/core"
	"cdl/internal/serve"
	"cdl/internal/tensor"
)

// TestClassifyBatchPolicyForceLocal pins the shed knob: a depth cap
// below the split stage resolves every input on the edge — zero offloads
// — with records identical to a fully-local capped cascade.
func TestClassifyBatchPolicyForceLocal(t *testing.T) {
	cdln, data := testCDLN(t, 81)
	lb, err := NewLoopback(cdln)
	if err != nil {
		t.Fatal(err)
	}
	split := len(cdln.Stages)
	edge, err := New(cdln, lb, Config{SplitStage: split, Delta: -1})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*tensor.T, 40)
	for i := range xs {
		xs[i] = data[i].X
	}
	ref, err := core.NewSession(cdln)
	if err != nil {
		t.Fatal(err)
	}
	for cap := 0; cap < split; cap++ {
		pol := core.DepthCapped(cap)
		want := ref.ResumeBatchPolicy(xs, 0, pol)
		got, err := edge.ClassifyBatchPolicy(xs, pol)
		if err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		for i, res := range got {
			if res.Offloaded {
				t.Fatalf("cap %d sample %d offloaded — a sub-split cap must stay local", cap, i)
			}
			if !sameRecord(res.Record, want[i]) {
				t.Fatalf("cap %d sample %d: %+v != local reference %+v", cap, i, res.Record, want[i])
			}
		}
	}

	// Caps in the cloud's half of the cascade cannot ride the δ-only
	// wire and must error, as must per-stage deltas.
	mid, err := New(cdln, lb, Config{SplitStage: 1, Delta: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mid.ClassifyBatchPolicy(xs[:1], core.DepthCapped(1)); err == nil {
		t.Error("cloud-tier depth cap accepted; want an error (not forwardable)")
	}
	if _, err := mid.ClassifyBatchPolicy(xs[:1], core.ExitPolicy{Delta: -1, MaxExit: -1, StageDeltas: []float64{-1, -1}}); err == nil {
		t.Error("per-stage deltas accepted; want an error (not forwardable)")
	}
}

func TestEdgeLadder(t *testing.T) {
	// split 1 on a 2-stage cascade: identity + MaxExit 0.
	l := edgeLadder(2, 1, 0)
	if len(l) != 2 || l[1].MaxExit != 0 {
		t.Fatalf("edgeLadder(2,1) = %+v, want [identity, cap0]", l)
	}
	// split 0 owns nothing: no actuation rungs → the controller must be
	// rejected at construction.
	if l := edgeLadder(2, 0, 0); len(l) != 1 {
		t.Fatalf("edgeLadder(2,0) = %+v, want identity only", l)
	}
}

// TestEdgeServerSLORejectsSplitZero: an SLO on an edge that owns no
// stages has nothing to actuate and must fail loudly at startup.
func TestEdgeServerSLORejectsSplitZero(t *testing.T) {
	cdln, _ := testCDLN(t, 82)
	lbFactory := func() (Transport, error) { return NewLoopback(cdln) }
	_, err := NewServer(cdln, lbFactory, Config{SplitStage: 0, Delta: -1},
		ServerConfig{Workers: 1, SLO: control.SLO{P99LatencyMs: 10}})
	if err == nil {
		t.Fatal("NewServer accepted an SLO with split 0; want an error")
	}
}

// TestEdgeServerControllerAdaptsOffloadSplit drives the loop end to end:
// an impossible energy budget must push the edge to resolve everything
// locally (offload fraction → 0 for inherited requests), while an
// explicit δ still offloads.
func TestEdgeServerControllerAdaptsOffloadSplit(t *testing.T) {
	cdln, data := testCDLN(t, 83)
	lbFactory := func() (Transport, error) { return NewLoopback(cdln) }
	edgeSrv, err := NewServer(cdln, lbFactory,
		Config{SplitStage: 1, Delta: 0.995}, // near-1 δ: nearly everything offloads at identity
		ServerConfig{
			Workers:         1,
			SLO:             control.SLO{EnergyBudgetPJ: 1}, // below any exit's energy
			ControlInterval: 5 * time.Millisecond,
			ControlWindow:   time.Second,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer edgeSrv.Close()
	ts := httptest.NewServer(edgeSrv.Handler())
	defer ts.Close()

	images := make([][]float64, 16)
	for i := range images {
		images[i] = data[i].X.Flatten().Data
	}
	post := func(req serve.ClassifyRequest) serve.ClassifyResponse {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out serve.ClassifyResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("classify: HTTP %d, %v", resp.StatusCode, err)
		}
		return out
	}

	// Drive traffic until the controller saturates at its floor.
	deadline := time.Now().Add(10 * time.Second)
	for {
		post(serve.ClassifyRequest{Images: images})
		st := edgeSrv.Stats()
		if st.Control != nil && st.Control.Rung == st.Control.MaxRung {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("edge controller never saturated: %+v", st.Control)
		}
		time.Sleep(10 * time.Millisecond)
	}

	before := edgeSrv.Stats()
	out := post(serve.ClassifyRequest{Images: images})
	for i, r := range out.Results {
		if r.ExitIndex != 0 {
			t.Fatalf("inherited result %d exited at %d under a saturated edge controller, want 0 (local)", i, r.ExitIndex)
		}
	}
	after := edgeSrv.Stats()
	if after.Offloads != before.Offloads {
		t.Errorf("saturated controller still offloaded (%d → %d)", before.Offloads, after.Offloads)
	}
	if after.LocalExits-before.LocalExits != int64(len(images)) {
		t.Errorf("local exits grew by %d, want %d", after.LocalExits-before.LocalExits, len(images))
	}

	// Explicit δ bypasses the controller: offloads resume.
	delta := 0.995
	post(serve.ClassifyRequest{Images: images, Delta: &delta})
	final := edgeSrv.Stats()
	if final.Offloads == after.Offloads {
		t.Errorf("explicit δ request did not offload — the controller must not override explicit policies")
	}
	if final.Control == nil || final.Control.MaxExit != 0 {
		t.Errorf("stats control %+v, want MaxExit 0", final.Control)
	}
	if final.Latency.Count == 0 {
		t.Error("edge latency histogram empty after traffic")
	}
}
