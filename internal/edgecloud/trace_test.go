package edgecloud

// trace_test.go pins the cross-tier tracing contract: one request entering
// a routed edge front under one trace ID must come back with a single
// merged span tree — the edge's prefix walk ("edge:stage:…",
// "edge:route:…"), the wire hop ("edge:offload") and the cloud's pool and
// cascade spans ("cloud:queue", "cloud:batch", "cloud:stage:…") — whether
// the cloud is a real serve.Server over HTTP or an in-process loopback.

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"cdl/internal/core"
	"cdl/internal/linclass"
	"cdl/internal/nn"
	"cdl/internal/obs"
	"cdl/internal/opcount"
	"cdl/internal/serve"
	"cdl/internal/train"
)

// branchCDLN builds an untrained branch cascade over the trunk's tap-3
// shape [2,5,5] (testCDLN's P1 output) — routing mechanics, not accuracy.
func branchCDLN(seed int64, classes int) *core.CDLN {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork([]int{2, 5, 5},
		nn.NewConv2D("B1", 2, 2, 2),
		nn.NewSigmoid("B1.act"),
		nn.NewFlatten("B.flat"),
		nn.NewDense("BFC", 2*4*4, classes),
		nn.NewSigmoid("BFC.act"),
	)
	nn.InitNetwork(net, rng)
	arch := &nn.Arch{
		Name: "edge-branch", Net: net,
		Taps: []int{2}, TapNames: []string{"B1"},
		NumClasses: classes,
	}
	return &core.CDLN{
		Arch:   arch,
		Stages: []*core.Stage{{Name: "O1", Tap: 2, LC: linclass.New(2*4*4, classes, rng), Gain: 1}},
		Delta:  0.5,
		Rule:   core.ThresholdRule{},
		Ops:    opcount.Default(),
	}
}

// routedEdgeGraph mirrors serve's routed fixture: the trained trunk with a
// stage-0 route sending class 0 to "lo" and class 2 to "hi". The threshold
// rule plus a δ near 1 suppresses trunk exits so the router actually
// fires.
func routedEdgeGraph(t testing.TB, seed int64) (*core.Graph, []train.Sample) {
	t.Helper()
	trunk, data := testCDLN(t, seed)
	trunk.Rule = core.ThresholdRule{}
	g := &core.Graph{Nodes: []*core.Node{
		{
			Name:   "trunk",
			Model:  trunk,
			Routes: []core.Route{{Stage: 0, Branch: []int{1, -1, 2}}},
		},
		{Name: "lo", Model: branchCDLN(seed+100, 2), Labels: []int{0, 1}},
		{Name: "hi", Model: branchCDLN(seed+200, 1), Labels: []int{2}},
	}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, data
}

// checkSpans applies the span-completeness contract and returns the name
// set: every span named, closed and ordered by start.
func checkSpans(t *testing.T, spans []obs.Span) map[string]bool {
	t.Helper()
	names := make(map[string]bool)
	for i, sp := range spans {
		if sp.Name == "" || sp.StartUnixNS == 0 {
			t.Errorf("span %d incomplete: %+v", i, sp)
		}
		if sp.DurationMS < 0 {
			t.Errorf("span %d not closed: %+v", i, sp)
		}
		if i > 0 && sp.StartUnixNS < spans[i-1].StartUnixNS {
			t.Errorf("span %d out of order", i)
		}
		names[sp.Name] = true
	}
	return names
}

// TestCrossTierSpanTree is the acceptance test for distributed tracing:
// routed graph, real HTTP between the tiers, a pinned 32-hex trace ID.
// Every response must carry the pinned ID with a complete ordered tree,
// and across the batch the tree must surface the edge stage, the route
// decision, the wire hop and the cloud's queue/batch/stage spans.
func TestCrossTierSpanTree(t *testing.T) {
	g, data := routedEdgeGraph(t, 81)

	reg := serve.NewRegistry(serve.Config{Workers: 2})
	if _, err := reg.RegisterGraph(serve.DefaultModelName, g); err != nil {
		t.Fatal(err)
	}
	cloud, err := serve.NewWithRegistry(reg)
	if err != nil {
		t.Fatal(err)
	}
	cloudTS := httptest.NewServer(cloud.Handler())
	t.Cleanup(func() { cloudTS.Close(); cloud.Close() })

	edgeSrv, err := NewGraphServer(g,
		func() (Transport, error) { return NewHTTPTransport(cloudTS.URL), nil },
		Config{SplitStage: 1, Delta: -1},
		ServerConfig{Workers: 1, CloudURL: cloudTS.URL})
	if err != nil {
		t.Fatal(err)
	}
	edgeTS := httptest.NewServer(edgeSrv.Handler())
	t.Cleanup(edgeTS.Close)

	const routingDelta = 0.999
	seen := make(map[string]bool)
	offloaded := false
	for i := 0; i < 12; i++ {
		id := strings.Repeat("0", 30) + strconv.Itoa(10+i) // 32 hex chars
		d := routingDelta
		body, _ := json.Marshal(serve.ClassifyRequest{
			Images: [][]float64{data[i].X.Flatten().Data},
			Delta:  &d,
		})
		hreq, err := http.NewRequest(http.MethodPost, edgeTS.URL+"/v1/classify", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set(obs.TraceHeader, id)
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		var out serve.ClassifyResponse
		derr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if derr != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("image %d: HTTP %d, %v", i, resp.StatusCode, derr)
		}
		if resp.Header.Get(obs.TraceHeader) != id {
			t.Fatalf("image %d: header echo %q, want %q", i, resp.Header.Get(obs.TraceHeader), id)
		}
		if out.TraceID != id {
			t.Fatalf("image %d: body trace_id %q, want %q", i, out.TraceID, id)
		}
		names := checkSpans(t, out.Spans)
		if !names["edge:stage:trunk#0"] {
			t.Errorf("image %d: no edge prefix stage span: %v", i, names)
		}
		hasCloud := false
		for n := range names {
			seen[n] = true
			if strings.HasPrefix(n, "cloud:") {
				hasCloud = true
			}
		}
		if hasCloud {
			offloaded = true
			// A cloud span in the merged tree proves the pinned ID crossed
			// the HTTP hop: the cloud only ships spans for propagated IDs.
			if !names["edge:offload"] {
				t.Errorf("image %d: cloud spans without a wire-hop span: %v", i, names)
			}
			if !names["cloud:queue"] || !names["cloud:batch"] {
				t.Errorf("image %d: cloud pool spans missing: %v", i, names)
			}
		}
	}
	if !offloaded {
		t.Fatal("no request offloaded; split fixture degenerate")
	}
	routeSeen := false
	for n := range seen {
		if strings.HasPrefix(n, "edge:route:trunk->") {
			routeSeen = true
		}
	}
	if !routeSeen {
		t.Error("no route-decision span across 12 routed requests")
	}
	cloudStage := false
	for n := range seen {
		if strings.HasPrefix(n, "cloud:stage:") || strings.HasPrefix(n, "cloud:fc:") || strings.HasPrefix(n, "cloud:forced:") {
			cloudStage = true
		}
	}
	if !cloudStage {
		t.Error("no cloud cascade stage span across offloaded requests")
	}
}

// TestLoopbackTraceSpans covers the headerless in-process cloud: an Edge
// with an attached trace must merge the loopback's cascade spans under the
// "cloud:" prefix and record the hop.
func TestLoopbackTraceSpans(t *testing.T) {
	cdln, data := testCDLN(t, 82)
	lb, err := NewLoopback(cdln)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := New(cdln, lb, Config{SplitStage: 1, Delta: -1})
	if err != nil {
		t.Fatal(err)
	}
	// δ≈1 forces the offload so the trace always crosses the "hop".
	tr := obs.NewTrace("loopback-trace", true)
	edge.AttachTrace(tr)
	defer edge.AttachTrace(nil)
	if _, err := edge.ClassifyDelta(data[0].X, 0.9999); err != nil {
		t.Fatal(err)
	}
	names := checkSpans(t, tr.Spans())
	for _, want := range []string{"edge:stage:trunk#0", "edge:offload"} {
		if !names[want] {
			t.Fatalf("missing %q in %v", want, names)
		}
	}
	cloudSpan := false
	for n := range names {
		if strings.HasPrefix(n, "cloud:") {
			cloudSpan = true
		}
	}
	if !cloudSpan {
		t.Fatalf("no cloud spans merged from the loopback: %v", names)
	}
}
