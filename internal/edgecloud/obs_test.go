package edgecloud

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cdl/internal/obs"
	"cdl/internal/serve"
)

// TestEdgeReadyzAndMetricsz covers the edge front's observability surface:
// /readyz flips to 503 on Close while /healthz stays live, and /metricsz
// exposes the tier counters, the latency histogram and the energy split in
// valid exposition text.
func TestEdgeReadyzAndMetricsz(t *testing.T) {
	cdln, data := testCDLN(t, 83)
	lbFactory := func() (Transport, error) { return NewLoopback(cdln) }
	edgeSrv, err := NewServer(cdln, lbFactory, Config{SplitStage: 1, Delta: -1}, ServerConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(edgeSrv.Handler())
	t.Cleanup(ts.Close)

	req := serve.ClassifyRequest{}
	for _, s := range data[:10] {
		req.Images = append(req.Images, s.X.Flatten().Data)
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify HTTP %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz HTTP %d, want 200", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metricsz HTTP %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type %q", ct)
	}
	out := buf.String()
	for _, want := range []string{
		"cdl_edge_requests_total 1",
		"cdl_edge_images_total 10",
		"cdl_edge_split_stage 1",
		"cdl_edge_offload_fraction ",
		"cdl_edge_latency_ms_count 10",
		`cdl_tier_energy_pj_total{tier="edge"} `,
		`cdl_tier_energy_pj_total{tier="link"} `,
		`cdl_tier_energy_pj_total{tier="cloud"} `,
		"cdl_energy_pj_per_image ",
		"cdl_edge_workers 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("edge scrape missing %q", want)
		}
	}

	edgeSrv.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed edge: /readyz HTTP %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("closed edge: /healthz HTTP %d, want 200", resp.StatusCode)
	}
}
