package wire

import (
	"encoding/hex"
	"math"
	"math/rand"
	"testing"

	"cdl/internal/fixed"
)

func testActivation() Activation {
	return Activation{
		FromStage: 1,
		Pos:       3,
		Shape:     []int{2, 2},
		Data:      []float64{0, 0.5, -0.25, 1},
	}
}

// TestGoldenEncoding pins the wire layout byte-for-byte: a change that
// breaks these constants breaks every deployed edge↔cloud pair and must
// bump the version.
func TestGoldenEncoding(t *testing.T) {
	const goldenFixed = "43444c41" + // magic "CDLA"
		"01" + "01" + "02" + "0d" + // version 1, fixed, Q2.13
		"0100" + "0300" + // fromStage 1, pos 3
		"02" + "02000000" + "02000000" + // rank 2, dims 2×2
		"0000" + "0010" + "00f8" + "0020" // 0, 0.5, -0.25, 1 at scale 2^13
	const goldenF64 = "43444c41" +
		"01" + "00" + "00" + "00" +
		"0100" + "0300" +
		"02" + "02000000" + "02000000" +
		"0000000000000000" + "000000000000e03f" +
		"000000000000d0bf" + "000000000000f03f"

	for _, tc := range []struct {
		name   string
		enc    Encoding
		golden string
	}{
		{"fixed", EncodingFixed, goldenFixed},
		{"float64", EncodingFloat64, goldenF64},
	} {
		b, err := Encode(testActivation(), tc.enc, fixed.Q2x13)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := hex.EncodeToString(b); got != tc.golden {
			t.Errorf("%s encoding drifted:\n got  %s\n want %s", tc.name, got, tc.golden)
		}
		if len(b) != EncodedSize(2, 4, tc.enc) {
			t.Errorf("%s: %d bytes, EncodedSize says %d", tc.name, len(b), EncodedSize(2, 4, tc.enc))
		}
	}
}

// TestGoldenEncodingRouted pins the version-2 layout: a branch handoff
// (Node > 0) inserts the uint16 node after pos, and nothing else moves.
func TestGoldenEncodingRouted(t *testing.T) {
	a := testActivation()
	a.Node = 2
	a.FromStage, a.Pos = 0, 0   // branch-entry handoff
	const golden = "43444c41" + // magic "CDLA"
		"02" + "00" + "00" + "00" + // version 2, float64
		"0000" + "0000" + // fromStage 0, pos 0
		"0200" + // node 2
		"02" + "02000000" + "02000000" + // rank 2, dims 2×2
		"0000000000000000" + "000000000000e03f" +
		"000000000000d0bf" + "000000000000f03f"
	b, err := Encode(a, EncodingFloat64, fixed.Format{})
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(b); got != golden {
		t.Errorf("routed encoding drifted:\n got  %s\n want %s", got, golden)
	}
	if len(b) != EncodedSizeAt(2, 2, 4, EncodingFloat64) {
		t.Errorf("%d bytes, EncodedSizeAt says %d", len(b), EncodedSizeAt(2, 2, 4, EncodingFloat64))
	}
	if len(b) != EncodedSize(2, 4, EncodingFloat64)+2 {
		t.Errorf("routed header is %d bytes over linear, want 2", len(b)-EncodedSize(2, 4, EncodingFloat64))
	}
}

// TestRoundTripRouted checks the node field survives both encodings, and
// that trunk handoffs keep emitting version-1 bytes (a linear deployment's
// wire format is unchanged by the routing extension).
func TestRoundTripRouted(t *testing.T) {
	for _, enc := range []Encoding{EncodingFloat64, EncodingFixed} {
		a := testActivation()
		a.Node = 7
		b, err := Encode(a, enc, fixed.Q2x13)
		if err != nil {
			t.Fatal(err)
		}
		if b[4] != versionRouted {
			t.Fatalf("%s: routed activation encoded as version %d", enc, b[4])
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Node != 7 || got.FromStage != a.FromStage || got.Pos != a.Pos {
			t.Fatalf("%s: decoded (node %d, stage %d, pos %d), want (7, %d, %d)",
				enc, got.Node, got.FromStage, got.Pos, a.FromStage, a.Pos)
		}
	}
	trunk, err := Encode(testActivation(), EncodingFloat64, fixed.Format{})
	if err != nil {
		t.Fatal(err)
	}
	if trunk[4] != versionLinear {
		t.Fatalf("trunk activation encoded as version %d, want %d", trunk[4], versionLinear)
	}
	got, err := Decode(trunk)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != 0 {
		t.Fatalf("trunk decode node %d, want 0", got.Node)
	}
	// The node field is range-checked at encode time like the others.
	bad := testActivation()
	bad.Node = math.MaxUint16 + 1
	if _, err := Encode(bad, EncodingFloat64, fixed.Format{}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

// TestRoundTripLossless checks float64 survives exactly, including values a
// fixed format would clip.
func TestRoundTripLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Activation{FromStage: 2, Pos: 6, Shape: []int{3, 2, 2}, Data: make([]float64, 12)}
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64() * 10
	}
	b, err := Encode(a, EncodingFloat64, fixed.Format{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.FromStage != a.FromStage || got.Pos != a.Pos {
		t.Fatalf("metadata %d/%d, want %d/%d", got.FromStage, got.Pos, a.FromStage, a.Pos)
	}
	if len(got.Shape) != 3 || got.Shape[0] != 3 || got.Shape[1] != 2 || got.Shape[2] != 2 {
		t.Fatalf("shape %v", got.Shape)
	}
	for i := range a.Data {
		if got.Data[i] != a.Data[i] {
			t.Fatalf("element %d: %v != %v", i, got.Data[i], a.Data[i])
		}
	}
}

// TestRoundTripFixed checks the quantized payload dequantizes within one
// resolution step and saturates out-of-range values.
func TestRoundTripFixed(t *testing.T) {
	f := fixed.Q2x13
	a := Activation{FromStage: 1, Pos: 3, Shape: []int{5}, Data: []float64{0.1, 0.987, -0.3, 5.5, -7}}
	b, err := Encode(a, EncodingFixed, f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range a.Data[:3] {
		if math.Abs(got.Data[i]-v) > f.Resolution() {
			t.Errorf("element %d: %v off by more than %v from %v", i, got.Data[i], f.Resolution(), v)
		}
	}
	if got.Data[3] != f.MaxValue() {
		t.Errorf("5.5 quantized to %v, want saturation at %v", got.Data[3], f.MaxValue())
	}
	if got.Data[4] != f.MinValue() {
		t.Errorf("-7 quantized to %v, want saturation at %v", got.Data[4], f.MinValue())
	}
}

// TestDecodeRejectsCorruption fuzzes the defensive header checks.
func TestDecodeRejectsCorruption(t *testing.T) {
	good, err := Encode(testActivation(), EncodingFixed, fixed.Q2x13)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func([]byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"empty":           {},
		"short header":    good[:8],
		"bad magic":       corrupt(func(b []byte) { b[0] = 'X' }),
		"bad version":     corrupt(func(b []byte) { b[4] = 99 }),
		"bad encoding":    corrupt(func(b []byte) { b[5] = 7 }),
		"bad format":      corrupt(func(b []byte) { b[6] = 200 }),
		"truncated dims":  good[:headerBase+2],
		"huge dim":        corrupt(func(b []byte) { b[headerBase+3] = 0xFF }),
		"short payload":   good[:len(good)-1],
		"trailing":        append(append([]byte(nil), good...), 0),
		"payload to rank": corrupt(func(b []byte) { b[12] = 1 }),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestEncodeRejectsBadInput covers the encoder's own validation.
func TestEncodeRejectsBadInput(t *testing.T) {
	a := testActivation()
	if _, err := Encode(a, Encoding(9), fixed.Q2x13); err == nil {
		t.Error("unknown encoding accepted")
	}
	if _, err := Encode(a, EncodingFixed, fixed.Format{IntBits: 20, FracBits: 20}); err == nil {
		t.Error("wide fixed format accepted")
	}
	a.Data = a.Data[:3]
	if _, err := Encode(a, EncodingFloat64, fixed.Format{}); err == nil {
		t.Error("shape/data mismatch accepted")
	}
	b := testActivation()
	b.FromStage = -1
	if _, err := Encode(b, EncodingFloat64, fixed.Format{}); err == nil {
		t.Error("negative fromStage accepted")
	}
}

func TestEncodingString(t *testing.T) {
	if EncodingFloat64.String() != "float64" || EncodingFixed.String() != "fixed" {
		t.Error("encoding names drifted")
	}
	if Encoding(9).String() == "" {
		t.Error("unknown encoding renders empty")
	}
}
