// Package wire is the versioned binary encoding of intermediate activations
// shipped across the edge–cloud split. An encoded activation carries enough
// metadata for the cloud to resume Algorithm 2 — the cascade stage to resume
// from, the baseline-layer position and shape of the tensor — plus the
// payload in one of two encodings:
//
//   - EncodingFloat64: raw IEEE-754 bits, lossless. The default, because it
//     preserves the tier-split bit-identity guarantee (split results equal
//     monolithic Classify exactly).
//   - EncodingFixed: int16 fixed-point words in a Qm.n format from
//     internal/fixed, modelling the quantized link of an edge deployment
//     (Long et al. 2020 ship 8/16-bit activations to cut radio energy).
//     4× smaller than float64 at Q2.13 resolution (2^-13) per element.
//
// The byte layout (all multi-byte fields little-endian) is:
//
//	offset size  field
//	0      4     magic "CDLA"
//	4      1     version (1 = linear, 2 = routed, 3 = traced)
//	5      1     encoding (0 = float64, 1 = fixed)
//	6      1     fixed-point integer bits (0 for float64)
//	7      1     fixed-point fraction bits (0 for float64)
//	8      2     fromStage: first cascade stage the receiver evaluates
//	10     2     pos: number of baseline layers composing the activation
//	12     2     node: routing-graph node to resume in (versions 2 and 3)
//	14     16    trace ID, raw bytes (version 3 only)
//	...    1     rank, then rank × uint32 dims
//	...          payload: numel × 8 bytes (float64) or × 2 bytes (fixed)
//
// Version 2 adds the routing-graph node the receiver must resume in, so a
// split/resume position names a (node, fromStage, pos) triple. Version 3
// additionally carries the request's 16-byte trace ID, so a cross-tier
// trace survives the resume boundary in-band; it always includes the node
// field, and is emitted only when the sender has a trace ID to propagate.
// Encoders emit version 1 whenever the node is the trunk (node 0) and no
// trace ID is attached — a linear deployment's bytes are unchanged, and a
// routed edge talking only trunk handoffs interoperates with a version-1
// peer. Decoders accept all versions (a version-1 activation resumes in
// the trunk) and reject unknown magic, versions and encodings, so the
// format can evolve without silently misreading old peers.
package wire

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"cdl/internal/fixed"
)

// Encoding selects the payload representation.
type Encoding uint8

const (
	// EncodingFloat64 is the lossless raw-bits payload.
	EncodingFloat64 Encoding = 0
	// EncodingFixed is the quantized int16 payload in a fixed.Format.
	EncodingFixed Encoding = 1
)

// String renders the encoding for logs and tables.
func (e Encoding) String() string {
	switch e {
	case EncodingFloat64:
		return "float64"
	case EncodingFixed:
		return "fixed"
	}
	return fmt.Sprintf("encoding(%d)", uint8(e))
}

const (
	magic = "CDLA"
	// versionLinear is the original trunk-only header; versionRouted adds
	// the uint16 routing-graph node; versionTraced additionally carries a
	// 16-byte request trace ID so a cross-tier trace survives the resume
	// boundary in-band (HTTP transports also carry it as a header, but the
	// wire format must stand alone for non-HTTP links).
	versionLinear = 1
	versionRouted = 2
	versionTraced = 3
	// headerBase is the fixed part of the version-1 header before the
	// dims; the version-2 header is two bytes longer; the version-3 header
	// always carries the node field plus the 16 trace-ID bytes.
	headerBase       = 13
	headerBaseRouted = 15
	headerBaseTraced = headerBaseRouted + traceIDBytes
	traceIDBytes     = 16
	// maxDim bounds each dimension and the total element count a decoder
	// will accept, so a hostile header cannot make it allocate unboundedly.
	maxElems = 1 << 24
)

// TraceOverhead is the worst-case header growth of attaching a trace ID to
// an activation: a trunk handoff moves from the version-1 to the version-3
// layout (the node field plus the raw ID bytes). Body-size bounds derived
// from EncodedSizeAt must add it to admit traced payloads.
const TraceOverhead = headerBaseTraced - headerBase

// Activation is the decoded form of a split-point handoff.
type Activation struct {
	// Node is the routing-graph node the receiving tier resumes in: 0 for
	// the trunk (the only value a linear deployment produces), a branch
	// index when the sender's trunk prefix routed the input (the handoff
	// is then the branch entry: FromStage 0, Pos 0).
	Node int
	// FromStage is the first cascade stage of the node the receiving tier
	// evaluates (the split stage of the sender's prefix).
	FromStage int
	// Pos is the number of leading baseline layers composing Data — the
	// CDLN.SplitPos of FromStage, carried explicitly so the receiver can
	// cross-check it against its own model.
	Pos int
	// Shape is the activation tensor's shape.
	Shape []int
	// Data is the payload in float64 (dequantized when the wire encoding
	// was fixed-point).
	Data []float64
	// TraceID, when non-empty, is the request trace ID propagated across
	// the tier split: exactly 32 lowercase hex characters (16 bytes).
	// Encoders emit the version-3 layout only when it is set, so untraced
	// peers keep their version-1/2 bytes unchanged.
	TraceID string
}

// Numel returns the element count implied by Shape.
func (a Activation) Numel() int {
	n := 1
	for _, d := range a.Shape {
		n *= d
	}
	return n
}

// EncodedSize returns the wire size in bytes of a trunk (node 0)
// activation with the given rank and element count under an encoding —
// the quantity the tiered energy model charges at pJ/byte.
func EncodedSize(rank, numel int, enc Encoding) int {
	return EncodedSizeAt(0, rank, numel, enc)
}

// EncodedSizeAt is EncodedSize for a handoff into an arbitrary
// routing-graph node: branch handoffs (node > 0) pay the two extra
// version-2 header bytes.
func EncodedSizeAt(node, rank, numel int, enc Encoding) int {
	per := 8
	if enc == EncodingFixed {
		per = 2
	}
	base := headerBase
	if node != 0 {
		base = headerBaseRouted
	}
	return base + 4*rank + per*numel
}

// Encode serializes the activation. For EncodingFixed, f must be a valid
// format of width ≤ 16 (the int16 payload word); values are quantized with
// saturation, so out-of-range activations clip rather than wrap. For
// EncodingFloat64, f is ignored.
func Encode(a Activation, enc Encoding, f fixed.Format) ([]byte, error) {
	if len(a.Data) != a.Numel() {
		return nil, fmt.Errorf("wire: %d values for shape %v (%d elements)", len(a.Data), a.Shape, a.Numel())
	}
	if a.Node < 0 || a.Node > math.MaxUint16 {
		return nil, fmt.Errorf("wire: node %d outside uint16", a.Node)
	}
	if a.FromStage < 0 || a.FromStage > math.MaxUint16 {
		return nil, fmt.Errorf("wire: fromStage %d outside uint16", a.FromStage)
	}
	if a.Pos < 0 || a.Pos > math.MaxUint16 {
		return nil, fmt.Errorf("wire: pos %d outside uint16", a.Pos)
	}
	if len(a.Shape) > math.MaxUint8 {
		return nil, fmt.Errorf("wire: rank %d outside uint8", len(a.Shape))
	}
	var intBits, fracBits uint8
	switch enc {
	case EncodingFloat64:
	case EncodingFixed:
		if err := f.Validate(); err != nil {
			return nil, err
		}
		if f.Width() > 16 {
			return nil, fmt.Errorf("wire: fixed format %s width %d exceeds the 16-bit payload word", f, f.Width())
		}
		intBits, fracBits = uint8(f.IntBits), uint8(f.FracBits)
	default:
		return nil, fmt.Errorf("wire: unknown encoding %d", enc)
	}

	// Trunk handoffs stay on the version-1 layout byte for byte; only a
	// routed handoff needs the node field, and hence version 2. A trace ID
	// upgrades either to version 3 (node always present, then the raw ID).
	var traceID []byte
	if a.TraceID != "" {
		raw, err := hex.DecodeString(a.TraceID)
		if err != nil || len(raw) != traceIDBytes {
			return nil, fmt.Errorf("wire: trace ID %q is not %d hex bytes", a.TraceID, traceIDBytes)
		}
		traceID = raw
	}
	ver := uint8(versionLinear)
	switch {
	case traceID != nil:
		ver = versionTraced
	case a.Node != 0:
		ver = versionRouted
	}
	b := make([]byte, 0, EncodedSizeAt(a.Node, len(a.Shape), len(a.Data), enc)+TraceOverhead)
	b = append(b, magic...)
	b = append(b, ver, uint8(enc), intBits, fracBits)
	b = binary.LittleEndian.AppendUint16(b, uint16(a.FromStage))
	b = binary.LittleEndian.AppendUint16(b, uint16(a.Pos))
	if ver != versionLinear {
		b = binary.LittleEndian.AppendUint16(b, uint16(a.Node))
	}
	if traceID != nil {
		b = append(b, traceID...)
	}
	b = append(b, uint8(len(a.Shape)))
	for _, d := range a.Shape {
		if d < 0 || d > maxElems {
			return nil, fmt.Errorf("wire: dimension %d outside [0,%d]", d, maxElems)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(d))
	}
	switch enc {
	case EncodingFloat64:
		for _, v := range a.Data {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	case EncodingFixed:
		for _, v := range a.Data {
			b = binary.LittleEndian.AppendUint16(b, uint16(int16(f.Quantize(v))))
		}
	}
	return b, nil
}

// Decode parses an encoded activation, dequantizing fixed-point payloads
// back to float64. It validates the header defensively: the input may come
// off the network.
func Decode(b []byte) (Activation, error) {
	var a Activation
	if len(b) < headerBase {
		return a, fmt.Errorf("wire: %d bytes, shorter than the %d-byte header", len(b), headerBase)
	}
	if string(b[:4]) != magic {
		return a, fmt.Errorf("wire: bad magic %q", b[:4])
	}
	if b[4] != versionLinear && b[4] != versionRouted && b[4] != versionTraced {
		return a, fmt.Errorf("wire: version %d, want %d, %d or %d", b[4], versionLinear, versionRouted, versionTraced)
	}
	enc := Encoding(b[5])
	f := fixed.Format{IntBits: int(b[6]), FracBits: int(b[7])}
	switch enc {
	case EncodingFloat64:
	case EncodingFixed:
		if err := f.Validate(); err != nil {
			return a, err
		}
		if f.Width() > 16 {
			return a, fmt.Errorf("wire: fixed format %s width %d exceeds the 16-bit payload word", f, f.Width())
		}
	default:
		return a, fmt.Errorf("wire: unknown encoding %d", enc)
	}
	a.FromStage = int(binary.LittleEndian.Uint16(b[8:10]))
	a.Pos = int(binary.LittleEndian.Uint16(b[10:12]))
	base := headerBase
	switch b[4] {
	case versionRouted:
		if len(b) < headerBaseRouted {
			return a, fmt.Errorf("wire: %d bytes, shorter than the %d-byte routed header", len(b), headerBaseRouted)
		}
		a.Node = int(binary.LittleEndian.Uint16(b[12:14]))
		base = headerBaseRouted
	case versionTraced:
		if len(b) < headerBaseTraced {
			return a, fmt.Errorf("wire: %d bytes, shorter than the %d-byte traced header", len(b), headerBaseTraced)
		}
		a.Node = int(binary.LittleEndian.Uint16(b[12:14]))
		a.TraceID = hex.EncodeToString(b[14 : 14+traceIDBytes])
		base = headerBaseTraced
	}
	rank := int(b[base-1])
	if len(b) < base+4*rank {
		return a, fmt.Errorf("wire: truncated dims (rank %d, %d bytes)", rank, len(b))
	}
	a.Shape = make([]int, rank)
	numel := 1
	for i := 0; i < rank; i++ {
		d := int(binary.LittleEndian.Uint32(b[base+4*i:]))
		if d > maxElems || numel > maxElems/max(d, 1) {
			return a, fmt.Errorf("wire: dimension %d of %d exceeds the %d-element decode bound", d, rank, maxElems)
		}
		a.Shape[i] = d
		numel *= d
	}
	payload := b[base+4*rank:]
	switch enc {
	case EncodingFloat64:
		if len(payload) != 8*numel {
			return a, fmt.Errorf("wire: float64 payload %d bytes, want %d", len(payload), 8*numel)
		}
		a.Data = make([]float64, numel)
		for i := range a.Data {
			a.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
	case EncodingFixed:
		if len(payload) != 2*numel {
			return a, fmt.Errorf("wire: fixed payload %d bytes, want %d", len(payload), 2*numel)
		}
		a.Data = make([]float64, numel)
		for i := range a.Data {
			raw := int16(binary.LittleEndian.Uint16(payload[2*i:]))
			a.Data[i] = f.Dequantize(int64(raw))
		}
	}
	return a, nil
}
