package wire

// fuzz_test.go hardens Decode against hostile network input: whatever the
// bytes, Decode must either return a structurally consistent Activation or
// an error — never panic, never allocate unboundedly (the maxElems decode
// bound), never return an Activation whose Data disagrees with its Shape.
// CI runs a 30-second `go test -fuzz` smoke on every push; the seeded
// corpus under testdata/fuzz/FuzzDecode pins the interesting regions
// (valid payloads of both encodings, truncations, bad magic/version/
// encoding, hostile dims) so even the plain `go test` run replays them.

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"cdl/internal/fixed"
)

var updateFuzzCorpus = flag.Bool("update-fuzz-corpus", false, "rewrite testdata/fuzz/FuzzDecode seed files")

// fuzzSeeds returns handcrafted seed inputs spanning the header's decision
// points — both header versions, truncations in both layouts, bad
// magic/version/encoding, hostile dims. It panics on the (impossible)
// encode failures so it can also drive the corpus generator without a
// *testing.F.
func fuzzSeeds() [][]byte {
	must := func(b []byte, err error) []byte {
		if err != nil {
			panic(err)
		}
		return b
	}
	valid := must(Encode(Activation{
		FromStage: 1, Pos: 3,
		Shape: []int{2, 3, 3},
		Data:  make([]float64, 18),
	}, EncodingFloat64, fixed.Format{}))
	fixedEnc := must(Encode(Activation{
		FromStage: 2, Pos: 6,
		Shape: []int{3, 2, 2},
		Data:  []float64{0.5, -0.5, 1.25, -1.25, 0, 3.999, -4, 0.0001220703125, 1, -1, 2, -2},
	}, EncodingFixed, fixed.Q2x13))
	scalarish := must(Encode(Activation{Shape: []int{1}, Data: []float64{math.Pi}}, EncodingFloat64, fixed.Format{}))
	// A branch-entry handoff: Node > 0 forces the version-2 routed header.
	routed := must(Encode(Activation{
		Node: 2, FromStage: 0, Pos: 0,
		Shape: []int{2, 5, 5},
		Data:  make([]float64, 50),
	}, EncodingFloat64, fixed.Format{}))
	routedFixed := must(Encode(Activation{
		Node: 1, FromStage: 0, Pos: 0,
		Shape: []int{4},
		Data:  []float64{0.5, -0.5, 1, -1},
	}, EncodingFixed, fixed.Q2x13))
	return [][]byte{
		valid,
		fixedEnc,
		scalarish,
		valid[:len(valid)-1], // truncated payload
		valid[:headerBase],   // header only, dims missing
		valid[:headerBase-1], // shorter than the fixed header
		{},                   // empty
		[]byte("XDLA\x01\x00\x00\x00\x00\x00\x00\x00\x00"),                                 // bad magic
		[]byte("CDLA\x03\x00\x00\x00\x00\x00\x00\x00\x00"),                                 // unknown version
		[]byte("CDLA\x01\x07\x00\x00\x00\x00\x00\x00\x00"),                                 // unknown encoding
		[]byte("CDLA\x01\x01\x20\x20\x00\x00\x00\x00\x00"),                                 // fixed format too wide
		[]byte("CDLA\x01\x00\x00\x00\x00\x00\x00\x00\x02\xff\xff\xff\xff\xff\xff\xff\xff"), // hostile dims
		routed,
		routedFixed,
		routed[:headerBaseRouted-1], // version-2 byte, header cut before the node field
		routed[:headerBaseRouted],   // routed header only, dims missing
		routed[:len(routed)-1],      // truncated routed payload
	}
}

// FuzzDecode is the satellite fuzz target: malformed headers, truncated
// payloads and wrong version bytes must error, never panic.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		a, err := Decode(b)
		if err != nil {
			return
		}
		// Successful decodes must be structurally consistent.
		if len(a.Data) != a.Numel() {
			t.Fatalf("decoded %d values for shape %v (%d elements)", len(a.Data), a.Shape, a.Numel())
		}
		if a.Numel() > maxElems {
			t.Fatalf("decoded %d elements beyond the %d bound", a.Numel(), maxElems)
		}
		for _, d := range a.Shape {
			if d < 0 || d > maxElems {
				t.Fatalf("decoded dimension %d outside [0,%d]", d, maxElems)
			}
		}
		if a.FromStage < 0 || a.FromStage > math.MaxUint16 {
			t.Fatalf("decoded fromStage %d outside uint16", a.FromStage)
		}
		if a.Pos < 0 || a.Pos > math.MaxUint16 {
			t.Fatalf("decoded pos %d outside uint16", a.Pos)
		}
		if a.Node < 0 || a.Node > math.MaxUint16 {
			t.Fatalf("decoded node %d outside uint16", a.Node)
		}
		if a.Node != 0 && b[4] == versionLinear {
			t.Fatalf("version-1 input decoded to node %d", a.Node)
		}
	})
}

// TestDecodeMalformedSeedsError pins the malformed seeds to hard errors
// (FuzzDecode only demands no-panic; these specific corruptions must also
// be rejected, not misread).
func TestDecodeMalformedSeedsError(t *testing.T) {
	seeds := map[string][]byte{
		"empty":            {},
		"magic-only":       []byte("CDLA"),
		"bad-magic":        []byte("XDLA\x01\x00\x00\x00\x00\x00\x00\x00\x00"),
		"unknown-version":  []byte("CDLA\x03\x00\x00\x00\x00\x00\x00\x00\x00"),
		"unknown-encoding": []byte("CDLA\x01\x07\x00\x00\x00\x00\x00\x00\x00"),
		"hostile-dims":     []byte("CDLA\x01\x00\x00\x00\x00\x00\x00\x00\x02\xff\xff\xff\xff\xff\xff\xff\xff"),
		// A version-2 byte with only the 13-byte linear header: the routed
		// layout needs two more bytes for the node field.
		"routed-header-truncated": []byte("CDLA\x02\x00\x00\x00\x00\x00\x00\x00\x00"),
	}
	for name, s := range seeds {
		if _, err := Decode(s); err == nil {
			t.Errorf("%s: malformed input decoded without error", name)
		}
	}
}

// TestWriteFuzzCorpus materializes the seed corpus under testdata so the
// fuzz engine (and plain `go test`) replays it from disk; run with
// -update-fuzz-corpus to regenerate after a format change.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*updateFuzzCorpus {
		t.Skip("run with -update-fuzz-corpus to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range fuzzSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(s)))
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
