package wire

import (
	"strings"
	"testing"

	"cdl/internal/fixed"
)

// TestRoundTripTraced pins the version-3 contract: a trace ID rides the
// header and survives the round trip, an empty ID keeps the exact
// version-1/2 bytes (so untraced peers never see the new version), and
// TraceOverhead bounds the growth.
func TestRoundTripTraced(t *testing.T) {
	const id = "00112233445566778899aabbccddeeff"
	a := testActivation()
	a.TraceID = id

	for _, enc := range []Encoding{EncodingFloat64, EncodingFixed} {
		b, err := Encode(a, enc, fixed.Q2x13)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", enc, err)
		}
		if got.TraceID != id {
			t.Errorf("%v: trace ID %q, want %q", enc, got.TraceID, id)
		}
		if got.FromStage != a.FromStage || got.Pos != a.Pos || got.Node != a.Node {
			t.Errorf("%v: header drifted: %+v", enc, got)
		}

		plain := a
		plain.TraceID = ""
		pb, err := Encode(plain, enc, fixed.Q2x13)
		if err != nil {
			t.Fatal(err)
		}
		if grow := len(b) - len(pb); grow > TraceOverhead {
			t.Errorf("%v: traced payload grew %d bytes, TraceOverhead says ≤%d", enc, grow, TraceOverhead)
		}
		pd, err := Decode(pb)
		if err != nil {
			t.Fatal(err)
		}
		if pd.TraceID != "" {
			t.Errorf("%v: untraced payload decoded trace ID %q", enc, pd.TraceID)
		}
	}
}

// TestEncodeRejectsBadTraceID: only 32-hex (16 raw byte) IDs fit the fixed
// header slot; anything else must error rather than truncate.
func TestEncodeRejectsBadTraceID(t *testing.T) {
	for _, bad := range []string{"short", strings.Repeat("0", 31), strings.Repeat("g", 32), strings.Repeat("0", 34)} {
		a := testActivation()
		a.TraceID = bad
		if _, err := Encode(a, EncodingFloat64, fixed.Q2x13); err == nil {
			t.Errorf("Encode accepted trace ID %q", bad)
		}
	}
}

// TestRoundTripTracedRouted: the trace ID coexists with a branch handoff
// (node > 0) — version 3 carries both the node and the ID.
func TestRoundTripTracedRouted(t *testing.T) {
	a := testActivation()
	a.Node = 2
	a.TraceID = "ffeeddccbbaa99887766554433221100"
	b, err := Encode(a, EncodingFloat64, fixed.Q2x13)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != 2 || got.TraceID != a.TraceID {
		t.Errorf("node=%d traceID=%q, want 2/%q", got.Node, got.TraceID, a.TraceID)
	}
}
