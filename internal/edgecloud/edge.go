// Package edgecloud splits CDLN inference across two tiers: an edge node
// owns the baseline prefix up to a configurable split stage plus its linear
// classifiers, exits easy inputs locally when the δ-rule fires, and ships
// only the hard residue — as wire-encoded intermediate activations — to a
// cloud backend that resumes the cascade (internal/serve's /v1/resume).
//
// This is the paper's thesis turned into an offload policy: the exit
// cascade already separates easy inputs from hard ones, so the same
// confidence test that saves deep-layer compute in a monolithic deployment
// decides what crosses the link in a distributed one (cf. Long et al.,
// "Conditionally Deep Hybrid Neural Networks Across Edge and Cloud", 2020).
// With the lossless wire encoding the split is semantically invisible:
// labels, exits and OPS are bit-identical to monolithic classification for
// every split stage. The fixed-point encoding trades that identity for a 4×
// smaller payload, modelling a quantized radio link.
//
// Energy is accounted per tier (internal/energy's TierCosts): edge compute
// for the prefix, bytes × pJ/byte for the link, cloud compute for the
// remainder.
package edgecloud

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"time"

	"cdl/internal/core"
	"cdl/internal/edgecloud/wire"
	"cdl/internal/energy"
	"cdl/internal/fixed"
	"cdl/internal/obs"
	"cdl/internal/serve"
	"cdl/internal/tensor"
)

// Config shapes an edge node.
type Config struct {
	// SplitStage is the number of cascade stages the edge owns, in
	// [0, len(Stages)]: 0 offloads every input untouched, len(Stages) runs
	// the whole cascade locally and offloads only FC-bound residues.
	SplitStage int
	// Delta overrides the model's trained thresholds for every input when
	// ≥ 0 (the §III.B runtime knob); negative keeps them. The same δ is
	// forwarded with each offload so the cloud continues the cascade the
	// edge started.
	Delta float64
	// Encoding selects the offload payload representation; the default
	// (EncodingFloat64) preserves bit-identity with monolithic
	// classification, EncodingFixed models a quantized link at a quarter
	// of the bytes.
	Encoding wire.Encoding
	// Format is the fixed-point format for EncodingFixed; zero value
	// means fixed.Q2x13 (the 16-bit datapath format).
	Format fixed.Format
	// Link is the transmission energy model; zero value means
	// energy.DefaultLink().
	Link energy.Link
}

// DefaultConfig returns an edge configuration for the given split stage:
// trained thresholds (Delta −1), lossless encoding, default link model.
func DefaultConfig(splitStage int) Config {
	return Config{SplitStage: splitStage, Delta: -1}.withDefaults()
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Format == (fixed.Format{}) {
		c.Format = fixed.Q2x13
	}
	if c.Link == (energy.Link{}) {
		c.Link = energy.DefaultLink()
	}
	return c
}

// Transport ships one wire-encoded activation to the cloud tier and
// returns the cascade's final exit record. delta follows Session.Resume
// semantics (< 0 = the model's trained thresholds). Implementations:
// HTTPTransport (a real cdlserve backend) and Loopback (in-process, for
// tests and single-node runs).
type Transport interface {
	Resume(payload []byte, delta float64) (core.ExitRecord, error)
}

// BatchTransport is an optional Transport extension: ship several
// offloaded activations in one round trip. Edge.ClassifyBatch uses it when
// available, so a hard batch pays one network round trip instead of one
// per image. Results must be in payload order.
type BatchTransport interface {
	Transport
	ResumeBatch(payloads [][]byte, delta float64) ([]core.ExitRecord, error)
}

// TracedBatchTransport is the tracing extension of BatchTransport: the
// hop carries the request's trace ID to the cloud tier (as an X-Trace-Id
// header on HTTPTransport, in-process on Loopback) and returns the cloud's
// span timeline alongside the records, so an Edge with an attached trace
// can stitch one end-to-end tree across the tier split. Implementations
// return the cloud spans un-prefixed; the Edge namespaces them "cloud:".
type TracedBatchTransport interface {
	Transport
	ResumeBatchTraced(payloads [][]byte, delta float64, traceID string) ([]core.ExitRecord, []obs.Span, error)
}

// Edge is the edge-tier runtime: a warm session over the full model of
// which it executes only the prefix, plus the offload machinery. Like
// core.Session it is single-goroutine; create one per worker (the edge
// Server does).
type Edge struct {
	cfg       Config
	sess      *core.Session
	transport Transport
	costs     *energy.TierCosts
	// tr is the attached request trace (nil between requests): prefix
	// stage spans, the offload hop and the cloud tier's merged spans all
	// record into it.
	tr *obs.Trace
}

// New validates the model and config and returns a warm edge runtime over a
// linear cascade.
func New(model *core.CDLN, t Transport, cfg Config) (*Edge, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return NewGraph(core.LinearGraph(model), t, cfg)
}

// NewGraph is New for a routing graph. The split always cuts the trunk;
// routed inputs defer to the cloud like any other hard residue (the edge
// owns only the trunk prefix), carrying their branch handoff on the wire.
func NewGraph(g *core.Graph, t Transport, cfg Config) (*Edge, error) {
	cfg = cfg.withDefaults()
	if t == nil {
		return nil, fmt.Errorf("edgecloud: nil transport")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	trunkStages := len(g.Trunk().Stages)
	if cfg.SplitStage < 0 || cfg.SplitStage > trunkStages {
		return nil, fmt.Errorf("edgecloud: split stage %d outside [0,%d]", cfg.SplitStage, trunkStages)
	}
	if cfg.Delta > 1 {
		return nil, fmt.Errorf("edgecloud: delta %v outside [0,1]", cfg.Delta)
	}
	if cfg.Encoding != wire.EncodingFloat64 && cfg.Encoding != wire.EncodingFixed {
		return nil, fmt.Errorf("edgecloud: unknown encoding %d", cfg.Encoding)
	}
	costs, err := energy.NewEvaluator().GraphTierCosts(g, cfg.SplitStage, cfg.Link)
	if err != nil {
		return nil, err
	}
	sess, err := core.NewGraphSession(g)
	if err != nil {
		return nil, err
	}
	return &Edge{cfg: cfg, sess: sess, transport: t, costs: costs}, nil
}

// Config returns the edge's effective (defaults-filled) configuration.
func (e *Edge) Config() Config { return e.cfg }

// AttachTrace attaches a request trace for the next Classify* call(s):
// prefix stage spans record as "edge:stage:...", the cloud round trip as
// "edge:offload", and — when the transport supports tracing — the cloud's
// own spans merge back under "cloud:". Pass nil to detach. Like every Edge
// method this is single-goroutine; the edge Server attaches per request
// while it holds the worker.
func (e *Edge) AttachTrace(tr *obs.Trace) { e.tr = tr }

// installObserver wires the session's stage events into the attached
// trace for the duration of one prefix walk; the returned func detaches.
func (e *Edge) installObserver() func() {
	if e.tr == nil {
		return func() {}
	}
	g := e.sess.Graph()
	tr := e.tr
	e.sess.SetStageObserver(func(ev core.StageEvent) {
		detail := ""
		if len(ev.Rows) > 1 && ev.Kind != core.StageRoute {
			detail = "batch=" + strconv.Itoa(len(ev.Rows))
		}
		tr.Record("edge:"+serve.SpanName(g, ev), ev.Start, ev.End, detail)
	})
	return func() { e.sess.SetStageObserver(nil) }
}

// wireTraceID returns the attached trace's ID when it fits the wire format
// (exactly 16 bytes hex — generated IDs always do), else "" — client-pinned
// free-form IDs still propagate over HTTP transports via the header.
func (e *Edge) wireTraceID() string {
	if e.tr == nil {
		return ""
	}
	id := e.tr.ID()
	if raw, err := hex.DecodeString(id); err != nil || len(raw) != 16 {
		return ""
	}
	return id
}

// Costs returns the precomputed per-exit tier energy split.
func (e *Edge) Costs() *energy.TierCosts { return e.costs }

// Result is one input's tier-split outcome.
type Result struct {
	// Record is the final classification, from the edge prefix or the
	// cloud resume.
	Record core.ExitRecord
	// Offloaded reports whether the input crossed the link.
	Offloaded bool
	// WireBytes is the encoded payload size (0 for local exits).
	WireBytes int
	// EdgePJ/LinkPJ/CloudPJ split this input's energy across tiers.
	EdgePJ  float64
	LinkPJ  float64
	CloudPJ float64
}

// TotalPJ is the input's whole-system energy.
func (r Result) TotalPJ() float64 { return r.EdgePJ + r.LinkPJ + r.CloudPJ }

// Classify runs the split pipeline on one input: prefix locally, exit if
// the δ-rule fires, otherwise encode the split-point activation and resume
// on the cloud. Classify uses ClassifyDelta semantics with the config's δ.
func (e *Edge) Classify(x *tensor.T) (Result, error) {
	return e.ClassifyDelta(x, e.cfg.Delta)
}

// ClassifyDelta is Classify with a per-call δ override (< 0 keeps the
// model's trained thresholds), forwarded to the cloud on offload.
func (e *Edge) ClassifyDelta(x *tensor.T, delta float64) (Result, error) {
	detach := e.installObserver()
	pre := e.sess.ClassifyPrefix(x, e.cfg.SplitStage, delta)
	detach()
	if pre.Exited {
		return e.localResult(pre.Record), nil
	}
	payload, err := e.encodePrefix(pre)
	if err != nil {
		return Result{}, err
	}
	recs, err := e.resumeOffloads([][]byte{payload}, delta)
	if err != nil {
		return Result{}, err
	}
	return e.offloadResult(recs[0], len(payload))
}

// ClassifyBatch runs the split pipeline over a batch: the whole batch's
// prefix runs locally in one batched cascade pass (ClassifyPrefixBatch —
// one GEMM per conv layer for every still-active input, exited inputs
// compacted away between stages), then all offloads travel together when
// the transport supports batching (one round trip) and one by one
// otherwise. Results are in input order and identical to per-sample
// Classify calls.
func (e *Edge) ClassifyBatch(xs []*tensor.T, delta float64) ([]Result, error) {
	return e.ClassifyBatchPolicy(xs, core.ExitPolicy{Delta: delta, MaxExit: -1})
}

// ClassifyBatchPolicy is ClassifyBatch under an ExitPolicy, within what a
// split deployment can honor: the offload wire carries only δ, so
// per-stage thresholds and depth caps in the cloud's half of the cascade
// cannot be forwarded and are rejected. A depth cap at or below the last
// local stage resolves the whole batch on the edge (nothing offloads) —
// the knob the SLO controller turns to shed the offload path under load.
func (e *Edge) ClassifyBatchPolicy(xs []*tensor.T, pol core.ExitPolicy) ([]Result, error) {
	if pol.StageDeltas != nil {
		return nil, fmt.Errorf("edgecloud: per-stage deltas cannot be forwarded on the δ-only offload wire")
	}
	maxDepth := e.sess.Graph().MaxDepth()
	if pol.MaxExit >= e.cfg.SplitStage && pol.MaxExit < maxDepth {
		return nil, fmt.Errorf("edgecloud: policy depth cap %d lies in the cloud tier (split %d) and cannot be forwarded on the δ-only offload wire",
			pol.MaxExit, e.cfg.SplitStage)
	}
	delta := pol.Delta
	results := make([]Result, len(xs))
	var payloads [][]byte
	var deferred []int // index into xs of each offloaded input
	detach := e.installObserver()
	prefixes := e.sess.ClassifyPrefixBatchPolicy(xs, e.cfg.SplitStage, pol)
	detach()
	for i, pre := range prefixes {
		if pre.Exited {
			results[i] = e.localResult(pre.Record)
			continue
		}
		payload, err := e.encodePrefix(pre)
		if err != nil {
			return nil, err
		}
		payloads = append(payloads, payload)
		deferred = append(deferred, i)
	}
	if len(payloads) == 0 {
		return results, nil
	}
	recs, err := e.resumeOffloads(payloads, delta)
	if err != nil {
		return nil, err
	}
	for k, rec := range recs {
		res, err := e.offloadResult(rec, len(payloads[k]))
		if err != nil {
			return nil, err
		}
		results[deferred[k]] = res
	}
	return results, nil
}

// resumeOffloads ships the deferred payloads across the link — one round
// trip on a BatchTransport, serially otherwise — recording the hop as an
// "edge:offload" span and, on a TracedBatchTransport, forwarding the trace
// ID and folding the cloud tier's spans back in under "cloud:".
func (e *Edge) resumeOffloads(payloads [][]byte, delta float64) ([]core.ExitRecord, error) {
	var start time.Time
	if e.tr != nil {
		start = time.Now()
	}
	var recs []core.ExitRecord
	var err error
	if tt, ok := e.transport.(TracedBatchTransport); ok && e.tr != nil {
		var spans []obs.Span
		recs, spans, err = tt.ResumeBatchTraced(payloads, delta, e.tr.ID())
		if err == nil {
			e.tr.Merge("cloud:", spans)
		}
	} else if bt, ok := e.transport.(BatchTransport); ok {
		recs, err = bt.ResumeBatch(payloads, delta)
	} else {
		recs = make([]core.ExitRecord, len(payloads))
		for k, p := range payloads {
			if recs[k], err = e.transport.Resume(p, delta); err != nil {
				break
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("edgecloud: cloud resume: %w", err)
	}
	if len(recs) != len(payloads) {
		return nil, fmt.Errorf("edgecloud: cloud returned %d records for %d offloads", len(recs), len(payloads))
	}
	if e.tr != nil {
		e.tr.Record("edge:offload", start, time.Now(), "payloads="+strconv.Itoa(len(payloads)))
	}
	return recs, nil
}

// localResult charges a prefix exit to the edge tier.
func (e *Edge) localResult(rec core.ExitRecord) Result {
	return Result{Record: rec, EdgePJ: e.costs.Edge[rec.StageIndex]}
}

// encodePrefix serializes a deferred prefix for the wire: a trunk residue
// resumes at the split stage, a routed input hands off at its branch entry
// (node, stage 0, pos 0). With a wire-compatible trace attached the
// payload carries the trace ID (format v3), so even a cloud tier reached
// through a headerless transport can continue the request's trace.
func (e *Edge) encodePrefix(pre core.PrefixResult) ([]byte, error) {
	payload, err := wire.Encode(wire.Activation{
		Node:      pre.Node,
		FromStage: pre.FromStage,
		Pos:       pre.Pos,
		Shape:     pre.Activation.Shape(),
		Data:      pre.Activation.Data,
		TraceID:   e.wireTraceID(),
	}, e.cfg.Encoding, e.cfg.Format)
	if err != nil {
		return nil, fmt.Errorf("edgecloud: encode offload: %w", err)
	}
	return payload, nil
}

// offloadResult validates a cloud record and charges all three tiers.
func (e *Edge) offloadResult(rec core.ExitRecord, wireBytes int) (Result, error) {
	if rec.StageIndex < e.cfg.SplitStage || rec.StageIndex >= len(e.costs.Edge) {
		return Result{}, fmt.Errorf("edgecloud: cloud returned exit %d outside [%d,%d)",
			rec.StageIndex, e.cfg.SplitStage, len(e.costs.Edge))
	}
	return Result{
		Record:    rec,
		Offloaded: true,
		WireBytes: wireBytes,
		EdgePJ:    e.costs.Edge[rec.StageIndex],
		LinkPJ:    e.costs.Link.TransferPJ(wireBytes),
		CloudPJ:   e.costs.Cloud[rec.StageIndex],
	}, nil
}
