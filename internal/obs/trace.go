// Package obs is the zero-dependency observability layer threaded through
// every serving tier: request tracing (X-Trace-Id propagation and timed
// spans from admission through micro-batching, stage execution, branch
// routing and edge→cloud hops), Prometheus-text metric exposition
// (/metricsz), opt-in phase profiling (im2col vs GEMM vs classifier) and
// the pprof/expvar admin listener. Everything here is stdlib-only — the
// serving stack must not grow a metrics dependency to be observable.
//
// Tracing is always on by default and is designed to stay on in
// production: per-request cost is one ID, a handful of clock reads per
// micro-batch stage and a mutex-guarded span append. SetEnabled(false)
// turns the whole layer into header pass-through — the overhead guard
// benchmark in internal/serve pins the enabled-vs-disabled gap.
package obs

import (
	"context"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying the request trace ID across
// tiers (client → edge → cloud and back).
const TraceHeader = "X-Trace-Id"

// enabled is the global tracing switch: on by default, atomically
// flippable at runtime (the overhead benchmark and the admin surface
// toggle it). Disabled means Middleware neither generates IDs nor attaches
// traces, so downstream span recording short-circuits on a nil Trace.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled flips the global tracing switch.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether tracing is globally on.
func Enabled() bool { return enabled.Load() }

// Span is one timed segment of a request's life: queue wait, batch
// grouping, a cascade stage, a route decision, a wire hop. Spans are
// recorded closed (start and end known at record time), so a trace's span
// list is always a complete tree over what actually executed.
type Span struct {
	Name string `json:"name"`
	// StartUnixNS anchors the span on the recording tier's clock;
	// DurationMS is its extent. Cross-tier spans therefore carry each
	// tier's own clock — offsets between tiers are the reader's problem,
	// as in any distributed trace.
	StartUnixNS int64   `json:"start_unix_ns"`
	DurationMS  float64 `json:"duration_ms"`
	// Detail is an optional free-form annotation (batch size, byte count,
	// branch target).
	Detail string `json:"detail,omitempty"`
}

// Trace collects the spans of one request under one ID. Spans complete on
// whatever goroutine ran the work (pool workers, edge workers), so all
// mutation is mutex-guarded. A nil *Trace is a valid no-op receiver for
// Record/Merge/AdoptID — call sites on the hot path need no nil checks
// beyond what they'd do anyway.
type Trace struct {
	mu         sync.Mutex
	id         string
	propagated bool
	spans      []Span
}

// NewTrace starts an empty trace. propagated marks an ID the client (or a
// wire payload) supplied — the signal that the caller wants trace data
// echoed back on the response body.
func NewTrace(id string, propagated bool) *Trace {
	return &Trace{id: id, propagated: propagated}
}

// GenerateID returns a fresh 32-hex-character (16-byte) trace ID.
func GenerateID() string {
	var b [32]byte
	hi, lo := rand.Uint64(), rand.Uint64()
	const hex = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		b[i] = hex[(hi>>uint(60-4*i))&0xf]
		b[16+i] = hex[(lo>>uint(60-4*i))&0xf]
	}
	return string(b[:])
}

// ValidID reports whether s is acceptable as a client-supplied trace ID:
// 1–64 bytes of [a-zA-Z0-9._-]. Anything else is ignored and replaced
// with a generated ID, so hostile header values never flow into logs or
// response bodies verbatim.
func ValidID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// ID returns the trace ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// Propagated reports whether the ID was supplied from outside (request
// header or wire payload) — the gate for echoing trace data in response
// bodies without perturbing clients that never asked.
func (t *Trace) Propagated() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.propagated
}

// AdoptID replaces a generated ID with one carried in-band (the wire
// header of an edge offload), marking the trace propagated so the
// originating tier's spans join one cross-tier trace. Invalid IDs are
// ignored; an already-propagated ID is never displaced.
func (t *Trace) AdoptID(id string) {
	if t == nil || !ValidID(id) {
		return
	}
	t.mu.Lock()
	if !t.propagated {
		t.id = id
		t.propagated = true
	}
	t.mu.Unlock()
}

// Record appends one closed span.
func (t *Trace) Record(name string, start, end time.Time, detail string) {
	if t == nil {
		return
	}
	sp := Span{
		Name:        name,
		StartUnixNS: start.UnixNano(),
		DurationMS:  float64(end.Sub(start)) / float64(time.Millisecond),
		Detail:      detail,
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Merge appends spans recorded on another tier, prefixing each name (e.g.
// "cloud:") so the merged timeline reads unambiguously.
func (t *Trace) Merge(prefix string, spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for _, sp := range spans {
		sp.Name = prefix + sp.Name
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans ordered by start time (ties
// keep record order), i.e. the request's timeline.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartUnixNS < out[j].StartUnixNS })
	return out
}

// ctxKey keys the request trace in a context.
type ctxKey struct{}

// With attaches a trace to a context.
func With(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// SlowLog samples structured log lines for slow requests: any request
// slower than Threshold is logged (with its trace ID and span summary) at
// most once per MinInterval, so a latency storm costs log lines, not a log
// flood.
type SlowLog struct {
	// Threshold is the slow-request cut-off. Default 250ms.
	Threshold time.Duration
	// MinInterval floors the time between logged samples. Default 1s.
	MinInterval time.Duration
	// Logger receives the samples; nil uses slog.Default().
	Logger *slog.Logger

	lastNS atomic.Int64
}

// NewSlowLog returns a sampler with the default threshold and interval.
func NewSlowLog() *SlowLog {
	return &SlowLog{Threshold: 250 * time.Millisecond, MinInterval: time.Second}
}

// Observe considers one finished request for sampling.
func (l *SlowLog) Observe(method, path string, status int, tr *Trace, dur time.Duration) {
	if l == nil || dur < l.Threshold {
		return
	}
	now := time.Now().UnixNano()
	last := l.lastNS.Load()
	if now-last < int64(l.MinInterval) || !l.lastNS.CompareAndSwap(last, now) {
		return
	}
	lg := l.Logger
	if lg == nil {
		lg = slog.Default()
	}
	attrs := []any{
		slog.String("method", method),
		slog.String("path", path),
		slog.Int("status", status),
		slog.Float64("duration_ms", float64(dur)/float64(time.Millisecond)),
	}
	if tr != nil {
		spans := tr.Spans()
		summary := make([]string, 0, len(spans))
		for _, sp := range spans {
			summary = append(summary, sp.Name+"="+strconv.FormatFloat(sp.DurationMS, 'f', 3, 64)+"ms")
		}
		attrs = append(attrs, slog.String("trace_id", tr.ID()), slog.Any("spans", summary))
	}
	lg.Warn("slow request", attrs...)
}

// statusRecorder captures the response status for the slow-request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Middleware is the front-door tracing layer shared by the cloud server
// and the edge front: it accepts a client X-Trace-Id (or generates one),
// echoes it on the response — set before the handler runs, so every
// response path including 503/504 sheds with Retry-After carries it —
// attaches the Trace to the request context, and feeds the slow-request
// sampler. With tracing globally disabled it reduces to header
// pass-through.
func Middleware(next http.Handler, slow *SlowLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hdr := r.Header.Get(TraceHeader)
		if !Enabled() {
			if ValidID(hdr) {
				w.Header().Set(TraceHeader, hdr)
			}
			next.ServeHTTP(w, r)
			return
		}
		id, propagated := hdr, true
		if !ValidID(id) {
			id, propagated = GenerateID(), false
		}
		tr := NewTrace(id, propagated)
		w.Header().Set(TraceHeader, id)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r.WithContext(With(r.Context(), tr)))
		if slow != nil {
			slow.Observe(r.Method, r.URL.Path, rec.status, tr, time.Since(start))
		}
	})
}
