package obs

import (
	"math"
	"strings"
	"testing"
)

// TestPromGolden pins the exposition text byte for byte: families grouped
// under one HELP/TYPE header in first-touch order, label order preserved,
// histograms rendered cumulatively with +Inf, _sum and _count. Scrapers
// parse this format mechanically — drift here is an interface break.
func TestPromGolden(t *testing.T) {
	p := NewProm()
	p.Counter("cdl_requests_total", "Requests admitted.", Labels{{"model", "default"}}, 42)
	p.Gauge("cdl_queue_depth", "Images waiting.", Labels{{"model", "default"}}, 3)
	// Same family touched later: groups under the first header.
	p.Counter("cdl_requests_total", "", Labels{{"model", "b"}}, 7)
	p.Histogram("cdl_total_latency_ms", "End-to-end latency.", Labels{{"model", "default"}},
		[]float64{1, 5, 25}, []int64{2, 3, 0}, 12.5, 6)

	const golden = `# HELP cdl_requests_total Requests admitted.
# TYPE cdl_requests_total counter
cdl_requests_total{model="default"} 42
cdl_requests_total{model="b"} 7
# HELP cdl_queue_depth Images waiting.
# TYPE cdl_queue_depth gauge
cdl_queue_depth{model="default"} 3
# HELP cdl_total_latency_ms End-to-end latency.
# TYPE cdl_total_latency_ms histogram
cdl_total_latency_ms_bucket{model="default",le="1"} 2
cdl_total_latency_ms_bucket{model="default",le="5"} 5
cdl_total_latency_ms_bucket{model="default",le="25"} 5
cdl_total_latency_ms_bucket{model="default",le="+Inf"} 6
cdl_total_latency_ms_sum{model="default"} 12.5
cdl_total_latency_ms_count{model="default"} 6
`
	if got := p.String(); got != golden {
		t.Errorf("exposition drifted:\n got:\n%s\n want:\n%s", got, golden)
	}
}

func TestPromEscaping(t *testing.T) {
	p := NewProm()
	p.Gauge("g", "help with \\ and\nnewline", Labels{{"l", "va\"l\\ue\n"}}, 1)
	got := p.String()
	want := `# HELP g help with \\ and\nnewline
# TYPE g gauge
g{l="va\"l\\ue\n"} 1
`
	if got != want {
		t.Errorf("escaping drifted:\n got:\n%q\n want:\n%q", got, want)
	}
}

func TestPromSpecialValues(t *testing.T) {
	p := NewProm()
	p.Gauge("inf", "", nil, math.Inf(1))
	p.Gauge("ninf", "", nil, math.Inf(-1))
	p.Gauge("nan", "", nil, math.NaN())
	got := p.String()
	for _, want := range []string{"inf +Inf\n", "ninf -Inf\n", "nan NaN\n"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

// TestPromHistogramOverflow: observations beyond the last bound appear in
// +Inf (via count) but not in any finite bucket.
func TestPromHistogramOverflow(t *testing.T) {
	p := NewProm()
	p.Histogram("h", "", nil, []float64{1}, []int64{2}, 100, 5)
	got := p.String()
	if !strings.Contains(got, `h_bucket{le="1"} 2`) || !strings.Contains(got, `h_bucket{le="+Inf"} 5`) {
		t.Errorf("overflow handling drifted:\n%s", got)
	}
}
