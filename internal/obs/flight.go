package obs

// flight.go is the wide-event flight recorder: a per-model ring buffer of
// canonical per-request records with tail-based retention. Every finished
// request produces one FlightRecord (policy source, exit depth, routed
// path, queue/service/total latency, batch size, energy, outcome); the
// recorder keeps the full record — span tree included — for anomalous
// requests (latency above the model's live p99, sheds, deadline hits,
// deepest exits, hedge losers) and only 1-in-N normals, so the buffer's
// memory is spent where the paper's input-dependent tail actually lives.
// /debug/flightz queries the rings; a FlightSnapshot freezes the anomalous
// evidence whenever the SLO controller steps a rung down, so every
// degradation ships with the requests that drove it.

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Canonical flight-record outcomes. The vocabulary is fixed — outcome
// strings never derive from request content.
const (
	FlightOK        = "ok"
	FlightShed      = "shed"
	FlightError     = "error"
	FlightHedgeWin  = "hedge_win"
	FlightHedgeLoss = "hedge_loss"
)

// Canonical anomaly tags: why a record was tail-retained.
const (
	AnomalyP99      = "p99_exceeded"
	AnomalyShed     = "shed"
	AnomalyDeadline = "deadline"
	AnomalyDeepExit = "deepest_exit"
	AnomalyHedge    = "hedge_loss"
	AnomalyError    = "error"
)

// flightEnabled is the recorder's global switch, independent of tracing:
// on by default, atomically flippable (the overhead benchmark pins the
// enabled-vs-disabled gap).
var flightEnabled atomic.Bool

func init() { flightEnabled.Store(true) }

// SetFlightEnabled flips the global flight-recorder switch.
func SetFlightEnabled(on bool) { flightEnabled.Store(on) }

// FlightEnabled reports whether flight recording is globally on.
func FlightEnabled() bool { return flightEnabled.Load() }

// FlightRecord is one request's wide event: everything the serving path
// knew about the request, flattened into a single queryable row.
type FlightRecord struct {
	TraceID string `json:"trace_id,omitempty"`
	Model   string `json:"model,omitempty"`
	Version int    `json:"version,omitempty"`
	// PolicySource says who chose the exit policy: "explicit" (the client
	// sent δ), "controller" (the SLO controller's current rung) or
	// "default" (the trained identity policy). Rung is meaningful only for
	// "controller".
	PolicySource string `json:"policy_source,omitempty"`
	Rung         int    `json:"rung,omitempty"`
	// ExitIndex is the exit depth the input resolved at (-1 when it never
	// exited, e.g. a shed). NodePath is the routed walk ("trunk" for a
	// linear cascade, "trunk->convB" for a branch dispatch).
	ExitIndex int     `json:"exit_index"`
	NodePath  string  `json:"node_path,omitempty"`
	QueueMS   float64 `json:"queue_ms,omitempty"`
	ServiceMS float64 `json:"service_ms,omitempty"`
	TotalMS   float64 `json:"total_ms"`
	BatchSize int     `json:"batch_size,omitempty"`
	EnergyPJ  float64 `json:"energy_pj,omitempty"`
	// Outcome is one of the Flight* constants; RejectCause refines sheds
	// ("queue_full", "closed", "churn", "deadline").
	Outcome     string `json:"outcome"`
	RejectCause string `json:"reject_cause,omitempty"`
	// Anomalies lists why this record was tail-retained (Anomaly* tags);
	// empty means it survived the 1-in-N normal sample.
	Anomalies   []string `json:"anomalies,omitempty"`
	StartUnixNS int64    `json:"start_unix_ns"`
	// Spans is the request's full span tree — always carried for
	// anomalous records, so the timeline that produced the tail is
	// reconstructable after the fact.
	Spans []Span `json:"spans,omitempty"`
}

// Anomalous reports whether the record carries any anomaly tag.
func (r *FlightRecord) Anomalous() bool { return len(r.Anomalies) > 0 }

// FlightConfig sizes a recorder.
type FlightConfig struct {
	// Capacity is the per-model ring size. Default 256.
	Capacity int
	// SampleN keeps 1-in-N normal (non-anomalous) records. 1 keeps all.
	// Default 16.
	SampleN uint64
	// SnapshotCap bounds retained rung-down snapshots. Default 8.
	SnapshotCap int
	// SnapshotRecords bounds records frozen per snapshot. Default 32.
	SnapshotRecords int
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.SampleN == 0 {
		c.SampleN = 16
	}
	if c.SnapshotCap <= 0 {
		c.SnapshotCap = 8
	}
	if c.SnapshotRecords <= 0 {
		c.SnapshotRecords = 32
	}
	return c
}

// FlightRecorder is one model's flight ring. The normal-path cost is one
// atomic counter bump and (for the sampled-out majority) nothing else;
// retained records take a short mutex-guarded ring write. Queries copy out
// under the same mutex, so writers are never blocked on JSON encoding.
type FlightRecorder struct {
	cfg FlightConfig

	// seq drives the 1-in-N normal sample lock-free.
	seq   atomic.Uint64
	seen  atomic.Int64
	kept  atomic.Int64
	tails atomic.Int64 // anomalous records retained

	mu   sync.Mutex
	ring []FlightRecord // guarded by mu; fixed-capacity ring
	next int            // guarded by mu
	n    int            // guarded by mu; live records in ring

	snapMu  sync.Mutex
	snaps   []FlightSnapshot // guarded by snapMu; newest last
	snapSeq int64            // guarded by snapMu
}

// NewFlightRecorder returns an empty recorder.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	return &FlightRecorder{cfg: cfg, ring: make([]FlightRecord, cfg.Capacity)}
}

// Record offers one finished request. Anomalous records (any anomaly tag)
// are always retained with whatever spans they carry; normal records pass
// the 1-in-N sample or vanish without touching the lock.
func (f *FlightRecorder) Record(rec FlightRecord) {
	if f == nil || !FlightEnabled() {
		return
	}
	f.seen.Add(1)
	if len(rec.Anomalies) == 0 {
		if f.cfg.SampleN > 1 && f.seq.Add(1)%f.cfg.SampleN != 0 {
			return
		}
		f.kept.Add(1)
	} else {
		f.tails.Add(1)
	}
	f.mu.Lock()
	f.ring[f.next] = rec
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	f.mu.Unlock()
}

// FlightQuery filters a recorder read.
type FlightQuery struct {
	Model         string  // "" = all (FlightSet level)
	Outcome       string  // "" = all
	MinTotalMS    float64 // 0 = all
	AnomalousOnly bool
	Limit         int // ≤0 = 32
}

func (q FlightQuery) limit() int {
	if q.Limit <= 0 {
		return 32
	}
	return q.Limit
}

func (q FlightQuery) match(r *FlightRecord) bool {
	if q.Outcome != "" && r.Outcome != q.Outcome {
		return false
	}
	if q.MinTotalMS > 0 && r.TotalMS < q.MinTotalMS {
		return false
	}
	if q.AnomalousOnly && !r.Anomalous() {
		return false
	}
	return true
}

// Query returns matching records, newest first, up to the query limit.
func (f *FlightRecorder) Query(q FlightQuery) []FlightRecord {
	if f == nil {
		return nil
	}
	limit := q.limit()
	out := make([]FlightRecord, 0, limit)
	f.mu.Lock()
	for i := 0; i < f.n && len(out) < limit; i++ {
		// Walk newest to oldest: next-1 backwards.
		idx := (f.next - 1 - i + 2*len(f.ring)) % len(f.ring)
		if r := &f.ring[idx]; q.match(r) {
			out = append(out, *r)
		}
	}
	f.mu.Unlock()
	return out
}

// FlightStats summarizes a recorder's retention counters.
type FlightStats struct {
	Seen      int64 `json:"seen"`
	Sampled   int64 `json:"sampled"`
	Anomalous int64 `json:"anomalous"`
	Buffered  int   `json:"buffered"`
}

// Stats snapshots the retention counters.
func (f *FlightRecorder) Stats() FlightStats {
	if f == nil {
		return FlightStats{}
	}
	f.mu.Lock()
	n := f.n
	f.mu.Unlock()
	return FlightStats{
		Seen:      f.seen.Load(),
		Sampled:   f.kept.Load(),
		Anomalous: f.tails.Load(),
		Buffered:  n,
	}
}

// FlightSnapshot freezes the flight evidence at a controller rung-down:
// the decision context plus the recorder's current records, anomalous
// first, so the requests that drove the degradation are preserved even if
// the ring churns on.
type FlightSnapshot struct {
	Seq          int64          `json:"seq"`
	Reason       string         `json:"reason"`
	Model        string         `json:"model,omitempty"`
	Rung         int            `json:"rung"`
	P99LatencyMS float64        `json:"p99_latency_ms"`
	TakenUnixNS  int64          `json:"taken_unix_ns"`
	Records      []FlightRecord `json:"records"`
}

// Snapshot captures a FlightSnapshot (anomalous records first, then
// newest normals, bounded by SnapshotRecords) and retains it in the
// snapshot ring.
func (f *FlightRecorder) Snapshot(reason, model string, rung int, p99MS float64, nowUnixNS int64) {
	if f == nil {
		return
	}
	recs := f.Query(FlightQuery{Limit: f.cfg.SnapshotRecords, AnomalousOnly: true})
	if len(recs) < f.cfg.SnapshotRecords {
		for _, r := range f.Query(FlightQuery{Limit: f.cfg.SnapshotRecords}) {
			if len(recs) >= f.cfg.SnapshotRecords {
				break
			}
			if !r.Anomalous() {
				recs = append(recs, r)
			}
		}
	}
	f.snapMu.Lock()
	f.snapSeq++
	f.snaps = append(f.snaps, FlightSnapshot{
		Seq:          f.snapSeq,
		Reason:       reason,
		Model:        model,
		Rung:         rung,
		P99LatencyMS: p99MS,
		TakenUnixNS:  nowUnixNS,
		Records:      recs,
	})
	if len(f.snaps) > f.cfg.SnapshotCap {
		f.snaps = f.snaps[len(f.snaps)-f.cfg.SnapshotCap:]
	}
	f.snapMu.Unlock()
}

// Snapshots returns the retained snapshots, newest last.
func (f *FlightRecorder) Snapshots() []FlightSnapshot {
	if f == nil {
		return nil
	}
	f.snapMu.Lock()
	out := append([]FlightSnapshot(nil), f.snaps...)
	f.snapMu.Unlock()
	return out
}

// maxFlightModels caps the per-model recorder cardinality: on the router
// tier model names come straight from URL paths, and an unbounded map
// would let a client mint rings at will. Past the cap, new names fold
// into the overflow recorder.
const maxFlightModels = 64

const overflowFlightModel = "_other"

// FlightSet is a tier's recorders keyed by model name. Recorders live at
// the set level so they survive registry hot-swaps: a new model version
// inherits its entry's ring and snapshot history.
type FlightSet struct {
	cfg  FlightConfig
	tier string

	mu   sync.RWMutex
	recs map[string]*FlightRecorder // guarded by mu
}

// NewFlightSet returns an empty set; tier names the owning serving tier
// in /debug/flightz responses ("serve", "edge", "fleet").
func NewFlightSet(tier string, cfg FlightConfig) *FlightSet {
	return &FlightSet{cfg: cfg.withDefaults(), tier: tier, recs: make(map[string]*FlightRecorder)}
}

// Recorder returns the model's recorder, creating it on first use. Past
// maxFlightModels distinct names, the overflow recorder is returned.
func (s *FlightSet) Recorder(model string) *FlightRecorder {
	s.mu.RLock()
	f := s.recs[model]
	s.mu.RUnlock()
	if f != nil {
		return f
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f = s.recs[model]; f != nil {
		return f
	}
	if len(s.recs) >= maxFlightModels {
		model = overflowFlightModel
		if f = s.recs[model]; f != nil {
			return f
		}
	}
	f = NewFlightRecorder(s.cfg)
	s.recs[model] = f
	return f
}

// FlightzResponse is the /debug/flightz JSON document.
type FlightzResponse struct {
	Tier      string                 `json:"tier"`
	Enabled   bool                   `json:"enabled"`
	Models    map[string]FlightStats `json:"models"`
	Records   []FlightRecord         `json:"records"`
	Snapshots []FlightSnapshot       `json:"snapshots,omitempty"`
}

// Query merges matching records across the set's recorders (or just the
// named model's), newest first, bounded by the query limit.
func (s *FlightSet) Query(q FlightQuery) FlightzResponse {
	resp := FlightzResponse{Tier: s.tier, Enabled: FlightEnabled(), Models: make(map[string]FlightStats)}
	s.mu.RLock()
	recs := make(map[string]*FlightRecorder, len(s.recs))
	for name, f := range s.recs {
		recs[name] = f
	}
	s.mu.RUnlock()
	for name, f := range recs {
		if q.Model != "" && name != q.Model {
			continue
		}
		resp.Models[name] = f.Stats()
		resp.Records = append(resp.Records, f.Query(q)...)
		resp.Snapshots = append(resp.Snapshots, f.Snapshots()...)
	}
	sort.SliceStable(resp.Records, func(i, j int) bool {
		return resp.Records[i].StartUnixNS > resp.Records[j].StartUnixNS
	})
	if limit := q.limit(); len(resp.Records) > limit {
		resp.Records = resp.Records[:limit]
	}
	sort.SliceStable(resp.Snapshots, func(i, j int) bool {
		return resp.Snapshots[i].TakenUnixNS < resp.Snapshots[j].TakenUnixNS
	})
	return resp
}

// Handler serves the /debug/flightz query surface: GET with optional
// model, outcome, min_ms, anomalous, and limit parameters.
func (s *FlightSet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		q := FlightQuery{
			Model:   r.URL.Query().Get("model"),
			Outcome: r.URL.Query().Get("outcome"),
		}
		if v := r.URL.Query().Get("min_ms"); v != "" {
			if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
				q.MinTotalMS = f
			}
		}
		if v := r.URL.Query().Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				q.Limit = n
			}
		}
		if v := r.URL.Query().Get("anomalous"); v == "1" || v == "true" {
			q.AnomalousOnly = true
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Query(q))
	})
}
