package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

func normalRec(model string, i int) FlightRecord {
	return FlightRecord{
		Model: model, TraceID: "t" + strconv.Itoa(i),
		ExitIndex: i % 4, TotalMS: float64(i % 10), Outcome: FlightOK,
		StartUnixNS: int64(i),
	}
}

func anomalousRec(model string, i int) FlightRecord {
	r := normalRec(model, i)
	r.TotalMS = 500 + float64(i)
	r.Anomalies = []string{AnomalyP99}
	r.Spans = []Span{{Name: "queue", StartUnixNS: int64(i), DurationMS: 1}}
	return r
}

// TestFlightTailRetention pins the retention contract: anomalous records
// always survive (spans intact), normals survive 1-in-N.
func TestFlightTailRetention(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Capacity: 512, SampleN: 8})
	for i := 0; i < 64; i++ {
		f.Record(normalRec("m", i))
	}
	for i := 0; i < 16; i++ {
		f.Record(anomalousRec("m", 1000+i))
	}
	anom := f.Query(FlightQuery{AnomalousOnly: true, Limit: 100})
	if len(anom) != 16 {
		t.Fatalf("retained %d anomalous records, want all 16", len(anom))
	}
	for _, r := range anom {
		if len(r.Spans) == 0 {
			t.Fatalf("anomalous record %s lost its span tree", r.TraceID)
		}
	}
	all := f.Query(FlightQuery{Limit: 1000})
	normals := len(all) - len(anom)
	if want := 64 / 8; normals != want {
		t.Fatalf("retained %d normal records, want %d (1-in-8 of 64)", normals, want)
	}
	st := f.Stats()
	if st.Seen != 80 || st.Anomalous != 16 || st.Sampled != 8 {
		t.Fatalf("stats %+v, want seen=80 anomalous=16 sampled=8", st)
	}
	// Newest first.
	if all[0].StartUnixNS < all[1].StartUnixNS {
		t.Fatalf("query not newest-first: %d then %d", all[0].StartUnixNS, all[1].StartUnixNS)
	}
}

// TestFlightQueryFilters exercises the /debug/flightz filter surface
// through the HTTP handler.
func TestFlightQueryFilters(t *testing.T) {
	set := NewFlightSet("serve", FlightConfig{SampleN: 1})
	for i := 0; i < 10; i++ {
		set.Recorder("a").Record(normalRec("a", i))
	}
	set.Recorder("a").Record(FlightRecord{
		Model: "a", Outcome: FlightShed, RejectCause: "queue_full",
		ExitIndex: -1, TotalMS: 42, Anomalies: []string{AnomalyShed}, StartUnixNS: 99,
	})
	for i := 0; i < 5; i++ {
		set.Recorder("b").Record(anomalousRec("b", i))
	}

	get := func(query string) FlightzResponse {
		req := httptest.NewRequest("GET", "/debug/flightz"+query, nil)
		w := httptest.NewRecorder()
		set.Handler().ServeHTTP(w, req)
		if w.Code != 200 {
			t.Fatalf("GET %s: HTTP %d", query, w.Code)
		}
		var resp FlightzResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("GET %s: %v", query, err)
		}
		return resp
	}

	if resp := get("?model=b"); len(resp.Records) != 5 {
		t.Fatalf("model=b returned %d records, want 5", len(resp.Records))
	}
	if resp := get("?outcome=shed"); len(resp.Records) != 1 || resp.Records[0].RejectCause != "queue_full" {
		t.Fatalf("outcome=shed returned %+v, want the one shed", resp.Records)
	}
	if resp := get("?min_ms=100"); len(resp.Records) != 5 {
		t.Fatalf("min_ms=100 returned %d records, want the 5 anomalous b records", len(resp.Records))
	}
	if resp := get("?limit=3"); len(resp.Records) != 3 {
		t.Fatalf("limit=3 returned %d records", len(resp.Records))
	}
	if resp := get("?anomalous=1&model=a"); len(resp.Records) != 1 {
		t.Fatalf("anomalous=1&model=a returned %d records, want 1", len(resp.Records))
	}
}

// TestFlightSnapshotCapturesAnomalies pins the rung-down snapshot: the
// frozen records lead with the anomalous evidence.
func TestFlightSnapshotCapturesAnomalies(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{SampleN: 1, SnapshotRecords: 8, SnapshotCap: 2})
	for i := 0; i < 20; i++ {
		f.Record(normalRec("m", i))
	}
	f.Record(anomalousRec("m", 777))
	f.Snapshot("rung_down", "m", 2, 33.3, time.Now().UnixNano())
	snaps := f.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Reason != "rung_down" || s.Rung != 2 || s.P99LatencyMS != 33.3 {
		t.Fatalf("snapshot context %+v", s)
	}
	if len(s.Records) != 8 {
		t.Fatalf("snapshot froze %d records, want 8", len(s.Records))
	}
	if !s.Records[0].Anomalous() || len(s.Records[0].Spans) == 0 {
		t.Fatalf("snapshot's first record is not the anomalous span tree: %+v", s.Records[0])
	}
	// The cap evicts oldest.
	f.Snapshot("rung_down", "m", 3, 44, time.Now().UnixNano())
	f.Snapshot("rung_down", "m", 4, 55, time.Now().UnixNano())
	snaps = f.Snapshots()
	if len(snaps) != 2 || snaps[0].Rung != 3 || snaps[1].Rung != 4 {
		t.Fatalf("snapshot ring %+v, want rungs 3,4", snaps)
	}
}

// TestFlightDisabledDropsRecords pins the kill switch the overhead
// benchmark relies on.
func TestFlightDisabledDropsRecords(t *testing.T) {
	SetFlightEnabled(false)
	defer SetFlightEnabled(true)
	f := NewFlightRecorder(FlightConfig{SampleN: 1})
	f.Record(anomalousRec("m", 1))
	if st := f.Stats(); st.Seen != 0 || st.Buffered != 0 {
		t.Fatalf("disabled recorder retained %+v", st)
	}
}

// TestFlightConcurrent hammers one FlightSet from concurrent writers,
// queriers, snapshotters and a "hot-swap" goroutine that re-resolves
// recorders by name (the registry-swap access pattern) — the -race run
// is the assertion.
func TestFlightConcurrent(t *testing.T) {
	set := NewFlightSet("serve", FlightConfig{Capacity: 64, SampleN: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	models := []string{"a", "b", "c"}

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m := models[i%len(models)]
				if i%7 == 0 {
					set.Recorder(m).Record(anomalousRec(m, i))
				} else {
					set.Recorder(m).Record(normalRec(m, i))
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				set.Query(FlightQuery{Limit: 16, Model: models[i%len(models)]})
				set.Query(FlightQuery{AnomalousOnly: true, Limit: 8})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Re-resolve by name as a hot-swap would, then snapshot.
			f := set.Recorder(models[i%len(models)])
			f.Snapshot("rung_down", models[i%len(models)], i%4, float64(i), int64(i))
			f.Snapshots()
			f.Stats()
		}
	}()

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	resp := set.Query(FlightQuery{Limit: 1000})
	if len(resp.Records) == 0 {
		t.Fatal("no records survived the storm")
	}
	for _, r := range resp.Records {
		if r.Model == "" {
			t.Fatal("torn record: empty model")
		}
	}
}
