package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names, and tests may build more than one admin mux.
var publishOnce sync.Once

// AdminRoute is an extra handler a tier mounts on its admin listener next
// to the static pprof/expvar surface — the flight-recorder query
// (/debug/flightz) and the burn-rate alert view (/alertz) ride here, so
// an operator can read the tail evidence even when the data port is the
// thing that's on fire.
type AdminRoute struct {
	Pattern string
	Handler http.Handler
}

// AdminMux builds the admin/debug surface served on the separate
// -admin-addr listener: net/http/pprof, expvar, the phase profile
// (JSON snapshot + enable/disable/reset controls), plus any tier-supplied
// extra routes. It is deliberately not part of the serving mux —
// profiling endpoints on a public port are an operational foot-gun.
func AdminMux(extra ...AdminRoute) *http.ServeMux {
	publishOnce.Do(func() {
		expvar.Publish("cdl_phase_profile", expvar.Func(func() any { return ProfSnapshot() }))
		expvar.Publish("cdl_tracing_enabled", expvar.Func(func() any { return Enabled() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/phaseprof", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Enabled bool        `json:"enabled"`
			Phases  []PhaseStat `json:"phases"`
		}{ProfilingEnabled(), ProfSnapshot()})
	})
	mux.HandleFunc("POST /debug/phaseprof", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("action") {
		case "enable":
			SetProfiling(true)
		case "disable":
			SetProfiling(false)
		case "reset":
			ProfReset()
		default:
			http.Error(w, `action must be "enable", "disable" or "reset"`, http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Enabled bool `json:"enabled"`
		}{ProfilingEnabled()})
	})
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}
	return mux
}

// ListenAdmin serves the admin mux on addr until the listener fails or the
// process exits. Run it on its own goroutine; errors are returned for the
// caller to log.
func ListenAdmin(addr string, extra ...AdminRoute) error {
	srv := &http.Server{Addr: addr, Handler: AdminMux(extra...)}
	return srv.ListenAndServe()
}
