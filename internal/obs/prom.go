package obs

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// Labels is an ordered label set ([name, value] pairs). Order is preserved
// in the exposition so output is deterministic and golden-pinnable.
type Labels [][2]string

// family is one metric family: HELP/TYPE header plus its sample lines in
// append order.
type family struct {
	name  string
	help  string
	kind  string // "counter" | "gauge" | "histogram"
	lines []string
}

// Prom accumulates metric samples and renders them in the Prometheus text
// exposition format (version 0.0.4). Samples of the same family are
// grouped under one HELP/TYPE header regardless of append order, so
// per-model emitters can interleave freely. Not safe for concurrent use:
// build one Prom per scrape.
type Prom struct {
	order  []string
	byName map[string]*family
}

// NewProm returns an empty builder.
func NewProm() *Prom {
	return &Prom{byName: make(map[string]*family)}
}

// ContentType is the scrape response Content-Type for the text format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func (p *Prom) fam(name, help, kind string) *family {
	f := p.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		p.byName[name] = f
		p.order = append(p.order, name)
	}
	return f
}

// Counter appends one counter sample.
func (p *Prom) Counter(name, help string, labels Labels, v float64) {
	f := p.fam(name, help, "counter")
	f.lines = append(f.lines, sampleLine(name, "", labels, v))
}

// Gauge appends one gauge sample.
func (p *Prom) Gauge(name, help string, labels Labels, v float64) {
	f := p.fam(name, help, "gauge")
	f.lines = append(f.lines, sampleLine(name, "", labels, v))
}

// Histogram appends one histogram series: per-bucket (non-cumulative)
// counts aligned with upper bounds, rendered as cumulative le= buckets
// plus the +Inf bucket, _sum and _count. Observations above the last
// bound land in +Inf only (count is authoritative, not the bucket sum).
func (p *Prom) Histogram(name, help string, labels Labels, bounds []float64, counts []int64, sum float64, count int64) {
	f := p.fam(name, help, "histogram")
	var cum int64
	for i, b := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		le := append(append(Labels{}, labels...), [2]string{"le", formatValue(b)})
		f.lines = append(f.lines, sampleLine(name, "_bucket", le, float64(cum)))
	}
	inf := append(append(Labels{}, labels...), [2]string{"le", "+Inf"})
	f.lines = append(f.lines, sampleLine(name, "_bucket", inf, float64(count)))
	f.lines = append(f.lines, sampleLine(name, "_sum", labels, sum))
	f.lines = append(f.lines, sampleLine(name, "_count", labels, float64(count)))
}

// WriteTo renders the accumulated families in first-touch order.
func (p *Prom) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, name := range p.order {
		f := p.byName[name]
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind)
		b.WriteByte('\n')
		for _, ln := range f.lines {
			b.WriteString(ln)
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the exposition as a string (tests, goldens).
func (p *Prom) String() string {
	var b strings.Builder
	p.WriteTo(&b)
	return b.String()
}

// sampleLine renders `name_suffix{labels} value`.
func sampleLine(name, suffix string, labels Labels, v float64) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, kv := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(kv[0])
			b.WriteString(`="`)
			b.WriteString(escapeLabel(kv[1]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects:
// shortest-round-trip decimal, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text format: backslash,
// double-quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
