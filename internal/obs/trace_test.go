package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestGenerateIDShape(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		id := GenerateID()
		if len(id) != 32 {
			t.Fatalf("GenerateID() = %q, want 32 chars", id)
		}
		for _, c := range id {
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("GenerateID() = %q contains non-hex %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("GenerateID() repeated %q within 64 draws", id)
		}
		seen[id] = true
	}
}

func TestValidID(t *testing.T) {
	for _, ok := range []string{"a", "load-3", "A.B_c-9", strings.Repeat("f", 64)} {
		if !ValidID(ok) {
			t.Errorf("ValidID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", strings.Repeat("f", 65), "has space", "new\nline", `quo"te`, "héx"} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true, want false", bad)
		}
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Record("x", time.Now(), time.Now(), "")
	tr.Merge("p:", []Span{{Name: "y"}})
	tr.AdoptID("abc")
	if tr.ID() != "" || tr.Propagated() || tr.Spans() != nil {
		t.Error("nil trace leaked state")
	}
}

func TestAdoptID(t *testing.T) {
	tr := NewTrace(GenerateID(), false)
	tr.AdoptID("not valid!") // rejected
	if tr.Propagated() {
		t.Fatal("invalid ID adopted")
	}
	tr.AdoptID("wire-id-1")
	if !tr.Propagated() || tr.ID() != "wire-id-1" {
		t.Fatalf("adopt failed: id=%q propagated=%v", tr.ID(), tr.Propagated())
	}
	tr.AdoptID("wire-id-2") // propagated IDs are never displaced
	if tr.ID() != "wire-id-1" {
		t.Fatalf("second adopt displaced the ID: %q", tr.ID())
	}
}

func TestSpansOrderedAndMerged(t *testing.T) {
	tr := NewTrace("t", true)
	base := time.Unix(100, 0)
	tr.Record("late", base.Add(2*time.Millisecond), base.Add(3*time.Millisecond), "")
	tr.Record("early", base, base.Add(time.Millisecond), "detail")
	tr.Merge("cloud:", []Span{{Name: "stage", StartUnixNS: base.Add(time.Millisecond).UnixNano(), DurationMS: 0.5}})
	spans := tr.Spans()
	want := []string{"early", "cloud:stage", "late"}
	if len(spans) != len(want) {
		t.Fatalf("%d spans, want %d", len(spans), len(want))
	}
	for i, w := range want {
		if spans[i].Name != w {
			t.Errorf("span[%d] = %q, want %q", i, spans[i].Name, w)
		}
	}
	if spans[0].DurationMS != 1 || spans[0].Detail != "detail" {
		t.Errorf("span[0] = %+v, want 1ms/detail", spans[0])
	}
	// Spans returns a copy: mutating it must not affect the trace.
	spans[0].Name = "mutated"
	if tr.Spans()[0].Name != "early" {
		t.Error("Spans() aliases internal storage")
	}
}

func TestMiddlewareEchoesAndGenerates(t *testing.T) {
	var got *Trace
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = FromContext(r.Context())
		w.WriteHeader(http.StatusServiceUnavailable) // header must already be set
	}), nil)

	// Client-pinned ID: echoed, propagated, present on an error response.
	req := httptest.NewRequest("POST", "/v1/classify", nil)
	req.Header.Set(TraceHeader, "pinned-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Header().Get(TraceHeader) != "pinned-1" {
		t.Fatalf("header = %q, want pinned-1", rec.Header().Get(TraceHeader))
	}
	if got == nil || !got.Propagated() || got.ID() != "pinned-1" {
		t.Fatalf("context trace = %+v", got)
	}

	// No ID: one is generated, echoed, not marked propagated.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/classify", nil))
	if id := rec.Header().Get(TraceHeader); !ValidID(id) || len(id) != 32 {
		t.Fatalf("generated header = %q", id)
	}
	if got.Propagated() {
		t.Error("generated ID marked propagated")
	}

	// Hostile ID: replaced with a generated one, never echoed verbatim.
	req = httptest.NewRequest("POST", "/v1/classify", nil)
	req.Header.Set(TraceHeader, "bad\nvalue")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if id := rec.Header().Get(TraceHeader); strings.Contains(id, "\n") || len(id) != 32 {
		t.Fatalf("hostile ID leaked: %q", id)
	}
}

func TestMiddlewareDisabled(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	var got *Trace
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = FromContext(r.Context())
	}), nil)
	req := httptest.NewRequest("POST", "/", nil)
	req.Header.Set(TraceHeader, "still-echoed")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got != nil {
		t.Error("disabled middleware attached a trace")
	}
	if rec.Header().Get(TraceHeader) != "still-echoed" {
		t.Error("disabled middleware dropped the header echo")
	}
}

func TestSlowLogSamples(t *testing.T) {
	var buf bytes.Buffer
	l := &SlowLog{
		Threshold:   10 * time.Millisecond,
		MinInterval: time.Hour,
		Logger:      slog.New(slog.NewTextHandler(&buf, nil)),
	}
	tr := NewTrace("slow-1", true)
	tr.Record("stage:trunk#0", time.Now(), time.Now().Add(time.Millisecond), "")
	l.Observe("POST", "/v1/classify", 200, tr, 5*time.Millisecond) // under threshold
	if buf.Len() != 0 {
		t.Fatalf("fast request logged: %s", buf.String())
	}
	l.Observe("POST", "/v1/classify", 200, tr, 50*time.Millisecond)
	out := buf.String()
	if !strings.Contains(out, "slow-1") || !strings.Contains(out, "stage:trunk#0") {
		t.Fatalf("slow log missing trace data: %s", out)
	}
	buf.Reset()
	l.Observe("POST", "/v1/classify", 200, tr, 50*time.Millisecond) // rate-limited
	if buf.Len() != 0 {
		t.Fatalf("rate limit did not hold: %s", buf.String())
	}
}

func TestProfilePhases(t *testing.T) {
	ProfReset()
	SetProfiling(true)
	defer SetProfiling(false)
	defer ProfReset()
	ProfAdd(PhaseIm2Col, 2*time.Millisecond)
	ProfAdd(PhaseGEMM, 3*time.Millisecond)
	ProfAdd(PhaseGEMM, time.Millisecond)
	snap := ProfSnapshot()
	byName := make(map[string]PhaseStat)
	for _, s := range snap {
		byName[s.Name] = s
	}
	if byName["im2col"].Calls != 1 || byName["im2col"].TotalMS != 2 {
		t.Errorf("im2col = %+v", byName["im2col"])
	}
	if byName["gemm"].Calls != 2 || byName["gemm"].TotalMS != 4 {
		t.Errorf("gemm = %+v", byName["gemm"])
	}
	if byName["classifier"].Calls != 0 {
		t.Errorf("classifier = %+v", byName["classifier"])
	}
	ProfReset()
	for _, s := range ProfSnapshot() {
		if s.Calls != 0 || s.TotalMS != 0 {
			t.Errorf("reset left %+v", s)
		}
	}
}
