package obs

// promparse.go is the reader half of the Prometheus text format whose
// writer lives in prom.go: the fleet router scrapes each backend's
// /metricsz and turns queue-depth gauges and latency histograms into
// load weights and hedge deadlines without growing a metrics dependency.
// The parser handles exactly what Prom emits (format 0.0.4 sample lines
// with escaped label values); it skips comment and blank lines and
// rejects structurally broken sample lines rather than guessing.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed sample line: name{labels} value.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// matches reports whether the sample carries every (name, value) pair in
// want (extra labels are allowed).
func (s PromSample) matches(want map[string]string) bool {
	for k, v := range want {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// ParseProm parses a text-format exposition into its sample lines.
// Comment (#) and blank lines are skipped; a malformed sample line is an
// error naming the line number.
func ParseProm(r io.Reader) ([]PromSample, error) {
	var out []PromSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSampleLine parses `name{k="v",...} value` (the label block is
// optional).
func parseSampleLine(line string) (PromSample, error) {
	s := PromSample{}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest[1:])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp (which Prom never writes) would appear as a
	// second field; reject rather than misread it as the value.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := parsePromValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes `k="v",...}` returning the map and the remainder
// after the closing brace.
func parseLabels(rest string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		rest = strings.TrimLeft(rest, ", ")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		name := strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label %s value not quoted", name)
		}
		rest = rest[1:]
		var b strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return nil, "", fmt.Errorf("unterminated label value for %s", name)
			}
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, "", fmt.Errorf("dangling escape in label %s", name)
				}
				switch rest[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		labels[name] = b.String()
		rest = rest[i:]
	}
}

// parsePromValue parses a sample value, accepting the spelled-out
// specials formatValue emits.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// SumSamples sums every sample of the family matching the label subset —
// e.g. total queue depth across a backend's models:
// SumSamples(samples, "cdl_queue_depth", nil).
func SumSamples(samples []PromSample, name string, match map[string]string) float64 {
	sum := 0.0
	for _, s := range samples {
		if s.Name == name && s.matches(match) {
			sum += s.Value
		}
	}
	return sum
}

// GaugeValue returns the first matching sample's value (ok=false when the
// family or label combination is absent).
func GaugeValue(samples []PromSample, name string, match map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.Name == name && s.matches(match) {
			return s.Value, true
		}
	}
	return 0, false
}

// HistogramQuantile estimates quantile q from a family's _bucket samples,
// merging every series that matches the label subset (so a multi-model
// backend's latency histograms fold into one fleet-facing distribution).
// Buckets are cumulative le= counts as the text format defines; the
// estimate is the upper bound of the first bucket at or past rank q — a
// deliberate over-estimate, which is the safe direction for both load
// weights and hedge deadlines. Returns ok=false with no observations.
func HistogramQuantile(samples []PromSample, name string, match map[string]string, q float64) (float64, bool) {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Merge matching series bucket-by-bucket: cumulative counts sum across
	// series at equal bounds.
	merged := make(map[float64]float64)
	for _, s := range samples {
		if s.Name != name+"_bucket" || !s.matches(match) {
			continue
		}
		le := s.Labels["le"]
		bound, err := parsePromValue(le)
		if err != nil {
			continue
		}
		merged[bound] += s.Value
	}
	if len(merged) == 0 {
		return 0, false
	}
	bounds := make([]float64, 0, len(merged))
	for b := range merged {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	total := merged[bounds[len(bounds)-1]] // +Inf bucket carries the count
	if total <= 0 {
		return 0, false
	}
	rank := q * total
	for _, b := range bounds {
		if merged[b] >= rank {
			if math.IsInf(b, 1) && len(bounds) > 1 {
				// The tail beyond the last finite bound: report that bound —
				// still an underestimate-free answer for every observation
				// the histogram actually resolved.
				return bounds[len(bounds)-2], true
			}
			return b, true
		}
	}
	return bounds[len(bounds)-1], true
}
