package obs

// promparse_test.go: the reader half of the text format must invert the
// writer half — whatever Prom emits, ParseProm recovers — plus the
// histogram-quantile math the fleet router hangs load decisions on.

import (
	"math"
	"strings"
	"testing"
)

// TestParsePromRoundTrip: build an exposition with the writer, parse it
// back, and check every sample survives — including escaped label values
// and the +Inf histogram bucket.
func TestParsePromRoundTrip(t *testing.T) {
	p := NewProm()
	p.Counter("reqs_total", "Requests.", Labels{{"model", "default"}}, 42)
	p.Counter("reqs_total", "", Labels{{"model", `we"ird\name`}}, 7)
	p.Gauge("depth", "Queue depth.", nil, 3.5)
	p.Histogram("lat_ms", "Latency.", Labels{{"model", "default"}},
		[]float64{1, 10, 100}, []int64{5, 3, 1}, 123.5, 10)

	samples, err := ParseProm(strings.NewReader(p.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := GaugeValue(samples, "reqs_total", map[string]string{"model": "default"}); !ok || v != 42 {
		t.Errorf("reqs_total{model=default} = %v,%v", v, ok)
	}
	if v, ok := GaugeValue(samples, "reqs_total", map[string]string{"model": `we"ird\name`}); !ok || v != 7 {
		t.Errorf("escaped label round trip failed: %v,%v", v, ok)
	}
	if v, ok := GaugeValue(samples, "depth", nil); !ok || v != 3.5 {
		t.Errorf("depth = %v,%v", v, ok)
	}
	// Histogram pieces: cumulative buckets, +Inf bucket carrying the total
	// count (one observation above the last bound), _sum and _count.
	if v, ok := GaugeValue(samples, "lat_ms_bucket", map[string]string{"le": "10"}); !ok || v != 8 {
		t.Errorf("le=10 bucket = %v,%v (want cumulative 8)", v, ok)
	}
	if v, ok := GaugeValue(samples, "lat_ms_bucket", map[string]string{"le": "+Inf"}); !ok || v != 10 {
		t.Errorf("+Inf bucket = %v,%v (want 10)", v, ok)
	}
	if v, ok := GaugeValue(samples, "lat_ms_sum", nil); !ok || v != 123.5 {
		t.Errorf("_sum = %v,%v", v, ok)
	}
	if v, ok := GaugeValue(samples, "lat_ms_count", nil); !ok || v != 10 {
		t.Errorf("_count = %v,%v", v, ok)
	}
	if got := SumSamples(samples, "reqs_total", nil); got != 49 {
		t.Errorf("SumSamples(reqs_total) = %v, want 49", got)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_here",
		`name{unterminated="x` + "\n",
		`name{a=unquoted} 1`,
		"name 1 1700000000", // trailing timestamp field
		"name notanumber",
		`{__name__="empty"} 1`,
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed exposition %q", bad)
		}
	}
}

func TestParsePromSkipsCommentsAndBlanks(t *testing.T) {
	in := "# HELP x y\n# TYPE x counter\n\nx 1\n"
	samples, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Name != "x" || samples[0].Value != 1 {
		t.Errorf("samples = %+v", samples)
	}
}

func TestParsePromSpecialValues(t *testing.T) {
	in := "a +Inf\nb -Inf\nc NaN\n"
	samples, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(samples[0].Value, 1) || !math.IsInf(samples[1].Value, -1) || !math.IsNaN(samples[2].Value) {
		t.Errorf("special values parsed as %+v", samples)
	}
}

// TestHistogramQuantile: the estimate is the upper bound of the bucket
// holding the rank, merged across matching series, and +Inf degrades to
// the last finite bound.
func TestHistogramQuantile(t *testing.T) {
	p := NewProm()
	// Two models' series merge: counts 6+4 below 1ms, 3+3 in (1,10],
	// 1+3 in (10,100].
	p.Histogram("lat_ms", "", Labels{{"model", "a"}}, []float64{1, 10, 100}, []int64{6, 3, 1}, 50, 10)
	p.Histogram("lat_ms", "", Labels{{"model", "b"}}, []float64{1, 10, 100}, []int64{4, 3, 3}, 90, 10)
	samples, err := ParseProm(strings.NewReader(p.String()))
	if err != nil {
		t.Fatal(err)
	}

	if q, ok := HistogramQuantile(samples, "lat_ms", nil, 0.5); !ok || q != 1 {
		t.Errorf("merged p50 = %v,%v, want 1 (10/20 at or below 1ms)", q, ok)
	}
	if q, ok := HistogramQuantile(samples, "lat_ms", nil, 0.95); !ok || q != 100 {
		t.Errorf("merged p95 = %v,%v, want 100", q, ok)
	}
	// Single-series selection via label match.
	if q, ok := HistogramQuantile(samples, "lat_ms", map[string]string{"model": "a"}, 0.9); !ok || q != 10 {
		t.Errorf("model=a p90 = %v,%v, want 10", q, ok)
	}
	// Absent family.
	if _, ok := HistogramQuantile(samples, "nope_ms", nil, 0.5); ok {
		t.Error("quantile of a missing family reported ok")
	}
}

// TestHistogramQuantileTail: observations above the last finite bound live
// in +Inf; the estimate degrades to the last finite bound rather than
// reporting infinity.
func TestHistogramQuantileTail(t *testing.T) {
	p := NewProm()
	// All 5 observations above 100: buckets all zero, count 5.
	p.Histogram("lat_ms", "", nil, []float64{1, 10, 100}, []int64{0, 0, 0}, 5000, 5)
	samples, err := ParseProm(strings.NewReader(p.String()))
	if err != nil {
		t.Fatal(err)
	}
	q, ok := HistogramQuantile(samples, "lat_ms", nil, 0.99)
	if !ok {
		t.Fatal("no quantile")
	}
	if math.IsInf(q, 1) {
		t.Error("tail quantile reported +Inf")
	}
	if q != 100 {
		t.Errorf("tail quantile = %v, want 100 (last finite bound)", q)
	}
}
