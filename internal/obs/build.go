package obs

// build.go identifies the running binary on every tier's /metricsz: the
// cdl_build_info gauge carries the module version, the Go toolchain and
// the serving tier as labels (value is always 1, the Prometheus info-
// metric idiom), so a fleet scrape can answer "which build is that
// backend running" without shelling into the box.

import (
	"runtime"
	"runtime/debug"
	"sync"
)

var (
	buildOnce    sync.Once
	buildVersion string
)

// moduleVersion returns the main module's version from the embedded build
// info ("(devel)" for an untagged local build, "unknown" when the binary
// carries no build info at all, e.g. under some test harnesses).
func moduleVersion() string {
	buildOnce.Do(func() {
		buildVersion = "unknown"
		if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
			buildVersion = bi.Main.Version
		}
	})
	return buildVersion
}

// BuildInfoLabels returns the cdl_build_info label set for a tier. Label
// order is pinned (go_version, module_version, tier) so expositions stay
// deterministic and golden-testable.
func BuildInfoLabels(tier string) Labels {
	return Labels{
		{"go_version", runtime.Version()},
		{"module_version", moduleVersion()},
		{"tier", tier},
	}
}
