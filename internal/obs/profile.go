package obs

import (
	"sync/atomic"
	"time"
)

// Phase identifies one hot-path compute phase for the opt-in profile:
// where a stage's wall time actually goes (lowering vs GEMM vs the
// per-stage linear classifier).
type Phase int

const (
	PhaseIm2Col Phase = iota
	PhaseGEMM
	PhaseClassifier
	numPhases
)

var phaseNames = [numPhases]string{"im2col", "gemm", "classifier"}

func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// profiling gates the per-phase accounting. Off by default: the hot path
// pays one atomic load per candidate site and nothing else.
var profiling atomic.Bool

// SetProfiling toggles per-phase accounting.
func SetProfiling(on bool) { profiling.Store(on) }

// ProfilingEnabled reports whether per-phase accounting is on. Call sites
// guard their clock reads with it.
func ProfilingEnabled() bool { return profiling.Load() }

// phase counters: total nanoseconds and call counts, accumulated lock-free
// from however many GEMM workers are running.
var (
	phaseNS    [numPhases]atomic.Int64
	phaseCalls [numPhases]atomic.Int64
)

// ProfAdd credits d of wall time to phase p. Callers are expected to have
// checked ProfilingEnabled() before taking the timestamps.
func ProfAdd(p Phase, d time.Duration) {
	if p < 0 || p >= numPhases {
		return
	}
	phaseNS[p].Add(int64(d))
	phaseCalls[p].Add(1)
}

// PhaseStat is one phase's accumulated profile.
type PhaseStat struct {
	Name    string  `json:"name"`
	Calls   int64   `json:"calls"`
	TotalMS float64 `json:"total_ms"`
}

// ProfSnapshot returns the per-phase totals since the last reset.
func ProfSnapshot() []PhaseStat {
	out := make([]PhaseStat, numPhases)
	for i := range out {
		out[i] = PhaseStat{
			Name:    Phase(i).String(),
			Calls:   phaseCalls[i].Load(),
			TotalMS: float64(phaseNS[i].Load()) / 1e6,
		}
	}
	return out
}

// ProfReset zeroes the per-phase totals.
func ProfReset() {
	for i := 0; i < int(numPhases); i++ {
		phaseNS[i].Store(0)
		phaseCalls[i].Store(0)
	}
}
