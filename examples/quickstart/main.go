// Quickstart: train a Conditional Deep Learning network and watch easy
// inputs exit early.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cdl"
)

func main() {
	// 1. Data: a deterministic synthetic MNIST split (28×28 digits).
	trainS, testS, err := cdl.GenerateMNIST(3000, 500, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Baseline: the paper's Table II 8-layer DLN, trained briefly — CDL
	// explicitly works with baselines that are "less than optimal".
	arch := cdl.NewArch8(7)
	if err := cdl.TrainBaseline(arch, trainS, 10, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline accuracy: %.4f\n", cdl.BaselineAccuracy(arch, testS))

	// 3. CDL: attach linear classifiers to the conv stages (Algorithm 1).
	cdln, _, err := cdl.BuildCDLN(arch, trainS, cdl.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cdln.Summary())

	// 4. Early-exit inference (Algorithm 2).
	res, err := cdl.Evaluate(cdln, testS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CDLN accuracy:  %.4f\n", res.Confusion.Accuracy())
	fmt.Printf("normalized OPS: %.3f (%.2fx fewer operations per input)\n",
		res.NormalizedOps(), res.Improvement())
	for e, name := range res.ExitNames {
		fmt.Printf("  %5.1f%% of inputs exit at %s\n", 100*res.ExitFraction(e, -1), name)
	}

	// 5. Classify one input and see where it exits.
	rec := cdln.Classify(testS[0].X)
	fmt.Printf("sample 0: predicted %d at stage %s with confidence %.2f (%.0f ops)\n",
		rec.Label, rec.StageName, rec.Confidence, rec.Ops)
}
