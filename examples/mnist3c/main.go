// MNIST_3C: the paper's headline configuration — the 8-layer network
// (Table II) with early exits O1 and O2, reproducing the 1.91x OPS and
// 1.84x energy improvements and the per-digit difficulty analysis of
// Figs. 5, 6 and 8.
//
// Run with:
//
//	go run ./examples/mnist3c
package main

import (
	"fmt"
	"log"

	"cdl"
)

func main() {
	trainS, testS, err := cdl.GenerateMNIST(4000, 1500, 1)
	if err != nil {
		log.Fatal(err)
	}

	arch := cdl.NewArch8(201)
	if err := cdl.TrainBaseline(arch, trainS, 7, 1); err != nil {
		log.Fatal(err)
	}
	baseAcc := cdl.BaselineAccuracy(arch, testS)

	cfg := cdl.DefaultBuildConfig()
	cfg.Epsilon = 10 // rejects O3, as the paper's Fig. 9 break-even demands
	cdln, _, err := cdl.BuildCDLN(arch, trainS, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cdln.Summary())

	res, err := cdl.Evaluate(cdln, testS)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := cdl.EnergyOf(cdln, res)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nbaseline accuracy %.4f → CDLN %.4f (%+.2f%%)\n",
		baseAcc, res.Confusion.Accuracy(), 100*(res.Confusion.Accuracy()-baseAcc))
	fmt.Printf("OPS:    %.2fx improvement (normalized %.3f)\n", res.Improvement(), res.NormalizedOps())
	fmt.Printf("energy: %.2fx improvement (%.1f nJ → %.1f nJ per input)\n",
		sum.Improvement(), sum.BaselineEnergy/1000, sum.MeanEnergy/1000)

	fmt.Println("\nper-digit analysis (Figs. 5, 6, 8):")
	fmt.Println("digit  normOPS  normEnergy  exit@O1  exit@FC")
	fcExit := len(res.ExitNames) - 1
	for d := 0; d < 10; d++ {
		fmt.Printf("  %d     %.3f    %.3f      %5.1f%%   %5.1f%%\n",
			d, res.ClassNormalizedOps(d), sum.ClassNormalized(d),
			100*res.ExitFraction(0, d), 100*res.ExitFraction(fcExit, d))
	}
}
