// Hwenergy: a tour of the 45 nm hardware substrate that replaces the
// paper's Synopsys flow — per-layer energy/cycle reports for both baseline
// DLNs, synthesized netlist inventories, and the per-stage classifier
// datapaths the paper adds.
//
// Run with:
//
//	go run ./examples/hwenergy
package main

import (
	"fmt"
	"math/rand"

	"cdl/internal/hw"
	"cdl/internal/nn"
)

func main() {
	acc := hw.Default45nm()
	fmt.Printf("accelerator: %d PEs, %d memory ports, %s process at %.0f MHz\n\n",
		acc.PEs, acc.MemPorts, acc.Tech.Name, acc.Tech.ClockMHz)

	arch6 := nn.Arch6Layer(rand.New(rand.NewSource(1)))
	arch8 := nn.Arch8Layer(rand.New(rand.NewSource(2)))

	for _, arch := range []*nn.Arch{arch6, arch8} {
		fmt.Printf("=== %s baseline — per-layer energy (one inference) ===\n", arch.Name)
		acts := hw.AnalyzeNetwork(arch.Net)
		fmt.Print(acc.Report(acts))
		total := acc.NetworkEnergy(acts)
		fmt.Printf("total: %.1f nJ per inference, %.1f µs at %.0f MHz\n\n",
			total.Total()/1000, total.Cycles/acc.Tech.ClockMHz, acc.Tech.ClockMHz)

		fmt.Print(hw.Synthesize(arch.Name, arch.Net, acc))
		fmt.Println()
	}

	// The per-stage linear classifiers the paper synthesizes alongside the
	// network (cost of "adding an output layer of neurons", §II.A.1).
	fmt.Println("=== CDL stage classifier datapaths (8-layer taps) ===")
	for i, tap := range arch8.Taps {
		in := arch8.TapFeatureLen(i)
		name := fmt.Sprintf("O%d", i+1)
		nl := hw.SynthesizeClassifier(name, in, arch8.NumClasses, acc)
		e := acc.LayerEnergy(hw.LinearClassifierActivity(in, arch8.NumClasses))
		fmt.Printf("%s (%d→%d, tap %d): %.1f kGE, %d B SRAM, %.2f nJ per evaluation\n",
			name, in, arch8.NumClasses, tap, nl.GateCount()/1000, nl.SRAMBytes(), e.Total()/1000)
	}
}
