// Deltasweep: the paper's runtime knob (§III.B, Fig. 10). The confidence
// threshold δ of a *trained* CDLN is adjusted at runtime — no retraining —
// trading operations for accuracy on the fly.
//
// Run with:
//
//	go run ./examples/deltasweep
package main

import (
	"fmt"
	"log"

	"cdl"
)

func main() {
	trainS, testS, err := cdl.GenerateMNIST(3000, 1000, 1)
	if err != nil {
		log.Fatal(err)
	}
	arch := cdl.NewArch8(11)
	if err := cdl.TrainBaseline(arch, trainS, 7, 1); err != nil {
		log.Fatal(err)
	}
	cdln, _, err := cdl.BuildCDLN(arch, trainS, cdl.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fig. 10 — runtime δ sweep on one trained CDLN")
	fmt.Println("delta  accuracy  normOPS   accuracy-vs-ops trade")
	for delta := 0.30; delta <= 0.951; delta += 0.05 {
		cdln.Delta = delta
		res, err := cdl.Evaluate(cdln, testS)
		if err != nil {
			log.Fatal(err)
		}
		bar := ""
		for i := 0.0; i < res.NormalizedOps()*40; i++ {
			bar += "▒"
		}
		fmt.Printf(" %.2f   %.4f    %.3f   %s\n",
			delta, res.Confusion.Accuracy(), res.NormalizedOps(), bar)
	}
	fmt.Println("\nlow δ: loose gate, most inputs exit early (cheap, riskier)")
	fmt.Println("high δ: strict gate, inputs defer to the deep layers (costly, baseline-like)")
}
