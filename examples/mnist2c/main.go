// MNIST_2C: the paper's 6-layer network (Table I) with one early-exit
// stage O1 after the first pooling layer. Reports per-digit normalized OPS
// (the Fig. 5 left-hand bars) and the accuracy comparison of Table III.
//
// Run with:
//
//	go run ./examples/mnist2c
package main

import (
	"fmt"
	"log"

	"cdl"
)

func main() {
	trainS, testS, err := cdl.GenerateMNIST(4000, 1500, 1)
	if err != nil {
		log.Fatal(err)
	}

	arch := cdl.NewArch6(101)
	if err := cdl.TrainBaseline(arch, trainS, 3, 1); err != nil {
		log.Fatal(err)
	}
	baseAcc := cdl.BaselineAccuracy(arch, testS)

	cfg := cdl.DefaultBuildConfig()
	cfg.Epsilon = 10
	cdln, report, err := cdl.BuildCDLN(arch, trainS, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range report.Stages {
		fmt.Printf("stage %s: classifies %d of %d training inputs, gain %.0f ops/input, admitted=%v\n",
			s.Name, s.Classified, s.Reaching, s.Gain, s.Admitted)
	}

	res, err := cdl.Evaluate(cdln, testS)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nTable III (6-layer row):")
	fmt.Printf("  baseline %.4f → MNIST_2C %.4f (%+.2f%%)\n",
		baseAcc, res.Confusion.Accuracy(), 100*(res.Confusion.Accuracy()-baseAcc))

	fmt.Println("\nFig. 5 (MNIST_2C): normalized OPS per digit")
	for d := 0; d < 10; d++ {
		bar := ""
		for i := 0.0; i < res.ClassNormalizedOps(d)*40; i++ {
			bar += "█"
		}
		fmt.Printf("  %d %5.3f %s\n", d, res.ClassNormalizedOps(d), bar)
	}
	fmt.Printf("mean improvement: %.2fx\n", res.Improvement())
}
