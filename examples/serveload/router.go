package main

// router.go is serveload's -router mode: a self-hosted multi-process
// fleet bench. Instead of targeting a running server it boots N real
// in-process cdlserve backends on loopback listeners, puts the
// cdlrouter front door (internal/fleet) over them, and measures four
// phases over the same request stream:
//
//	direct             round-robin straight at the backends (baseline)
//	routed             through the router, hedging off → router overhead
//	straggler_nohedge  through the router with an injected straggler
//	                   (1-in-K classifies sleep ~150ms) → the tail the
//	                   paper's latency story inherits at fleet scale
//	straggler_hedge    same straggler storm through a hedging router
//	                   with a pinned deadline → the hedge's p99 win and
//	                   its duplicate-work cost (hedges / requests)
//
// The result document (written with -bench-out, e.g. BENCH_fleet.json)
// carries per-phase latency percentiles plus the two headline numbers
// CI tracks per commit: hedge_p99_win_ms (straggler_nohedge p99 minus
// straggler_hedge p99 — positive means hedging clipped the tail) and
// duplicate_work_fraction (hedges sent per routed request — the cost,
// expected ≈ the straggler fraction and ≤ 0.10).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cdl/internal/core"
	"cdl/internal/fleet"
	"cdl/internal/nn"
	"cdl/internal/serve"
	"cdl/internal/tensor"
	"cdl/internal/train"
)

// straggler wraps one backend's handler and, when armed, puts every
// every'th classify POST to sleep for delay before forwarding — the
// in-process analogue of a replica with a GC pause or a noisy
// neighbour. Probes (GET /readyz, /metricsz) are never delayed, so the
// backend stays "healthy" the whole time: exactly the straggler shape
// health checks cannot catch and hedging exists for.
type straggler struct {
	next     http.Handler
	every    int64
	delay    time.Duration
	on       atomic.Bool
	n        atomic.Int64
	injected atomic.Int64
}

func (s *straggler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.on.Load() && r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/classify") {
		if s.n.Add(1)%s.every == 0 {
			s.injected.Add(1)
			time.Sleep(s.delay)
		}
	}
	s.next.ServeHTTP(w, r)
}

// benchBackend is one self-hosted cdlserve "process": a full Server on
// its own loopback listener behind a straggler shim.
type benchBackend struct {
	srv   *serve.Server
	hs    *http.Server
	url   string
	shim  *straggler
	close func()
}

func startBenchBackend(cdln *core.CDLN, cfg serve.Config, every int64, delay time.Duration) (*benchBackend, error) {
	srv, err := serve.New(cdln, cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	shim := &straggler{next: srv.Handler(), every: every, delay: delay}
	hs := &http.Server{Handler: shim}
	go func() { _ = hs.Serve(ln) }()
	b := &benchBackend{srv: srv, hs: hs, url: "http://" + ln.Addr().String(), shim: shim}
	b.close = func() {
		_ = hs.Close()
		srv.Close()
	}
	return b, nil
}

// benchModel trains the small blob cascade the serving-tier tests use
// (12×12 inputs, 3 classes, two taps) — big enough that classify does
// real cascade work, small enough to train in about a second — and
// returns it with the pixel stream the phases will replay.
func benchModel(seed int64) (*core.CDLN, [][]float64, error) {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewNetwork([]int{1, 12, 12},
		nn.NewConv2D("C1", 1, 2, 3),
		nn.NewSigmoid("C1.act"),
		nn.NewMaxPool2D("P1", 2),
		nn.NewConv2D("C2", 2, 3, 2),
		nn.NewSigmoid("C2.act"),
		nn.NewMaxPool2D("P2", 2),
		nn.NewFlatten("flat"),
		nn.NewDense("FC", 3*2*2, 3),
		nn.NewSigmoid("FC.act"),
	)
	nn.InitNetwork(net, rng)
	arch := &nn.Arch{
		Name: "fleet-bench", Net: net,
		Taps: []int{3, 6}, TapNames: []string{"P1", "P2"},
		NumClasses: 3,
	}
	centers := [][2]int{{3, 3}, {3, 8}, {8, 5}}
	data := make([]train.Sample, 256)
	for i := range data {
		label := i % 3
		noise := 0.05
		if rng.Float64() < 0.3 {
			noise = 0.35
		}
		x := tensor.New(1, 12, 12)
		cy, cx := centers[label][0], centers[label][1]
		for y := 0; y < 12; y++ {
			for xx := 0; xx < 12; xx++ {
				d2 := float64((y-cy)*(y-cy) + (xx-cx)*(xx-cx))
				v := 1/(1+d2/3) + rng.NormFloat64()*noise
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				x.Data[y*12+xx] = v
			}
		}
		data[i] = train.Sample{X: x, Label: label}
	}
	tcfg := train.Defaults(3)
	tcfg.Epochs = 12
	tcfg.BatchSize = 10
	if _, err := train.SGD(arch.Net, data, tcfg); err != nil {
		return nil, nil, err
	}
	bcfg := core.DefaultBuildConfig()
	bcfg.ForceAllStages = true
	cdln, _, err := core.Build(arch, data, bcfg)
	if err != nil {
		return nil, nil, err
	}
	pixels := make([][]float64, len(data))
	for i, s := range data {
		pixels[i] = s.X.Data
	}
	return cdln, pixels, nil
}

// phaseResult is one phase's client-side view.
type phaseResult struct {
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
	ImagesPerS float64 `json:"images_per_sec"`
}

// firePhase replays nImgs images in batched /v1 classify requests from
// c closed-loop clients, round-robining requests across urls (one URL =
// everything through that front door; several = direct-to-backend).
func firePhase(urls []string, pixels [][]float64, nImgs, c, batch int) (phaseResult, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	defer client.CloseIdleConnections()
	nReq := (nImgs + batch - 1) / batch
	lats := make([]time.Duration, nReq)
	var errs atomic.Int64
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				lo := (i * batch) % (len(pixels) - batch)
				body, err := json.Marshal(classifyRequest{Images: pixels[lo : lo+batch]})
				if err != nil {
					errs.Add(1)
					continue
				}
				t0 := time.Now()
				resp, err := client.Post(urls[i%len(urls)]+"/v1/classify", "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				_, rerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				lats[i] = time.Since(t0)
			}
		}()
	}
	for i := 0; i < nReq; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	ok := lats[:0]
	for _, l := range lats {
		if l > 0 {
			ok = append(ok, l)
		}
	}
	if len(ok) == 0 {
		return phaseResult{Requests: nReq, Errors: int(errs.Load())}, fmt.Errorf("phase: all %d requests failed", nReq)
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	pct := func(p float64) float64 {
		return float64(ok[int(p*float64(len(ok)-1))]) / float64(time.Millisecond)
	}
	return phaseResult{
		Requests:   nReq,
		Errors:     int(errs.Load()),
		P50MS:      pct(0.50),
		P95MS:      pct(0.95),
		P99MS:      pct(0.99),
		MaxMS:      float64(ok[len(ok)-1]) / float64(time.Millisecond),
		ImagesPerS: float64(nImgs) / elapsed.Seconds(),
	}, nil
}

// fleetBench is the BENCH_fleet.json document.
type fleetBench struct {
	Backends         int     `json:"backends"`
	Concurrency      int     `json:"concurrency"`
	Batch            int     `json:"batch"`
	ImagesPerPhase   int     `json:"images_per_phase"`
	StragglerEvery   int64   `json:"straggler_every"`
	StragglerDelayMS float64 `json:"straggler_delay_ms"`
	HedgeDeadlineMS  float64 `json:"hedge_deadline_ms"`

	Phases map[string]phaseResult `json:"phases"`

	// RouterOverheadP50MS is routed p50 minus direct p50 — what one hop
	// through the front door costs a median request.
	RouterOverheadP50MS float64 `json:"router_overhead_p50_ms"`
	// HedgeP99WinMS is straggler_nohedge p99 minus straggler_hedge p99:
	// positive means hedging clipped the injected tail.
	HedgeP99WinMS float64 `json:"hedge_p99_win_ms"`
	HedgesSent    int64   `json:"hedges_sent"`
	HedgeWins     int64   `json:"hedge_wins"`
	HedgeLosses   int64   `json:"hedge_losses"`
	// DuplicateWorkFraction is hedges sent per routed request in the
	// hedged phase — the duplicate-work cost of the p99 win. Expected ≈
	// the straggler fraction (1/straggler_every), budgeted ≤ 0.10.
	DuplicateWorkFraction float64 `json:"duplicate_work_fraction"`
	StragglersInjected    int64   `json:"stragglers_injected"`
}

// waitFleetReady polls the router until every backend is admitted.
func waitFleetReady(rt *fleet.Router, want int) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		healthy := 0
		for _, b := range rt.Stats().Backends {
			if b.Healthy {
				healthy++
			}
		}
		if healthy == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("router admitted %d/%d backends after 10s", healthy, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runRouterBench is the -router entry point.
func runRouterBench(nBackends, nImgs, c, batch int, seed int64, every int64, delay, hedgeDeadline time.Duration, out string) error {
	if nBackends < 2 {
		return fmt.Errorf("-router needs at least 2 backends (hedges and overflow need somewhere to go)")
	}
	if every < 2 {
		return fmt.Errorf("-straggler-every must be ≥ 2")
	}
	if batch < 1 || c < 1 || nImgs < batch {
		return fmt.Errorf("n, c and batch must be positive (and n ≥ batch)")
	}

	fmt.Printf("fleet bench: training the blob cascade... ")
	t0 := time.Now()
	cdln, pixels, err := benchModel(seed)
	if err != nil {
		return err
	}
	fmt.Printf("done in %v\n", time.Since(t0).Round(time.Millisecond))

	// Backends: real cdlserve servers on loopback, each behind a
	// straggler shim (armed only for the straggler phases).
	scfg := serve.Config{Workers: 2, QueueDepth: 256, MaxBatch: batch}
	backends := make([]*benchBackend, nBackends)
	urls := make([]string, nBackends)
	for i := range backends {
		b, err := startBenchBackend(cdln, scfg, every, delay)
		if err != nil {
			return err
		}
		defer b.close()
		backends[i] = b
		urls[i] = b.url
	}

	// Two routers over the same fleet: hedging off (overhead + straggler
	// baseline) and hedging on with a pinned deadline (min == max), so
	// the hedge fires if and only if an attempt outlives the deadline.
	newRouter := func(hedge bool) (*fleet.Router, string, func(), error) {
		cfg := fleet.Config{
			Backends:      urls,
			ProbeInterval: 100 * time.Millisecond,
			ProbeTimeout:  2 * time.Second,
			Hedge:         hedge,
			HedgeMin:      hedgeDeadline,
			HedgeMax:      hedgeDeadline,
		}
		rt, err := fleet.New(cfg)
		if err != nil {
			return nil, "", nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			rt.Close()
			return nil, "", nil, err
		}
		hs := &http.Server{Handler: rt.Handler()}
		go func() { _ = hs.Serve(ln) }()
		stop := func() {
			_ = hs.Close()
			rt.Close()
		}
		return rt, "http://" + ln.Addr().String(), stop, nil
	}
	plainRT, plainURL, stopPlain, err := newRouter(false)
	if err != nil {
		return err
	}
	defer stopPlain()
	hedgeRT, hedgeURL, stopHedge, err := newRouter(true)
	if err != nil {
		return err
	}
	defer stopHedge()
	if err := waitFleetReady(plainRT, nBackends); err != nil {
		return err
	}
	if err := waitFleetReady(hedgeRT, nBackends); err != nil {
		return err
	}

	bench := fleetBench{
		Backends:         nBackends,
		Concurrency:      c,
		Batch:            batch,
		ImagesPerPhase:   nImgs,
		StragglerEvery:   every,
		StragglerDelayMS: float64(delay) / float64(time.Millisecond),
		HedgeDeadlineMS:  float64(hedgeDeadline) / float64(time.Millisecond),
		Phases:           make(map[string]phaseResult),
	}
	setStragglers := func(on bool) {
		for _, b := range backends {
			b.shim.on.Store(on)
		}
	}
	runPhase := func(name string, urls []string) (phaseResult, error) {
		r, err := firePhase(urls, pixels, nImgs, c, batch)
		if err != nil {
			return r, fmt.Errorf("%s: %w", name, err)
		}
		bench.Phases[name] = r
		fmt.Printf("%-18s p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  max %7.2fms  %6.0f imgs/s  errors %d\n",
			name, r.P50MS, r.P95MS, r.P99MS, r.MaxMS, r.ImagesPerS, r.Errors)
		return r, nil
	}

	fmt.Printf("fleet bench: %d backends, %d images/phase (batch %d, %d clients), straggler 1-in-%d × %v, hedge deadline %v\n",
		nBackends, nImgs, batch, c, every, delay, hedgeDeadline)
	// Warm every backend's pools and the routers' latency windows before
	// measuring, so phase 1 isn't paying first-request setup.
	if _, err := firePhase(urls, pixels, 4*batch, c, batch); err != nil {
		return err
	}
	if _, err := firePhase([]string{plainURL}, pixels, 4*batch, c, batch); err != nil {
		return err
	}
	if _, err := firePhase([]string{hedgeURL}, pixels, 4*batch, c, batch); err != nil {
		return err
	}

	direct, err := runPhase("direct", urls)
	if err != nil {
		return err
	}
	routed, err := runPhase("routed", []string{plainURL})
	if err != nil {
		return err
	}
	setStragglers(true)
	noHedge, err := runPhase("straggler_nohedge", []string{plainURL})
	if err != nil {
		return err
	}
	// Snapshot the hedging router's counters around its phase so the
	// duplicate-work fraction covers exactly the hedged storm.
	before := hedgeRT.Stats()
	hedged, err := runPhase("straggler_hedge", []string{hedgeURL})
	if err != nil {
		return err
	}
	setStragglers(false)
	after := hedgeRT.Stats()

	bench.RouterOverheadP50MS = routed.P50MS - direct.P50MS
	bench.HedgeP99WinMS = noHedge.P99MS - hedged.P99MS
	bench.HedgesSent = after.HedgesSent - before.HedgesSent
	bench.HedgeWins = after.HedgeWins - before.HedgeWins
	bench.HedgeLosses = after.HedgeLosses - before.HedgeLosses
	bench.DuplicateWorkFraction = float64(bench.HedgesSent) / float64(hedged.Requests)
	for _, b := range backends {
		bench.StragglersInjected += b.shim.injected.Load()
	}

	fmt.Printf("\nrouter overhead (p50, routed - direct): %+.2fms\n", bench.RouterOverheadP50MS)
	fmt.Printf("hedge p99 win (no-hedge - hedged under straggler): %+.2fms\n", bench.HedgeP99WinMS)
	fmt.Printf("duplicate work: %d hedges / %d requests = %.1f%% (wins %d, losses %d; budget ≤ 10%%)\n",
		bench.HedgesSent, hedged.Requests, 100*bench.DuplicateWorkFraction, bench.HedgeWins, bench.HedgeLosses)

	if out != "" {
		doc, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		doc = append(doc, '\n')
		if err := os.WriteFile(out, doc, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}
