// Command serveload is a load generator for cdlserve: it synthesizes a
// deterministic MNIST-like test set, sprays it at a running server from
// concurrent clients in batched classify requests, and reports throughput,
// latency percentiles and the server's own /statsz counters.
//
// With -model it targets named models on the v2 surface — a comma list
// round-robins requests across entries (exercising multi-model dispatch in
// one process) and the exit distribution is reported per model.
//
// Usage (against a server started as in README.md):
//
//	go run ./examples/serveload -addr http://localhost:8080 -n 2000 -c 8 -batch 16
//	go run ./examples/serveload -addr http://localhost:8080 -delta 0.3   # cheaper, riskier
//	go run ./examples/serveload -addr http://localhost:8080 -model fast,accurate
//
// With -groups the generated traffic is skewed toward digit groups
// ("even,odd" with -group-weights "3,1" sends three even digits per odd
// one) and the report adds a per-branch exit breakdown — against a
// routed model (see examples/routing) this shows the class-group load
// landing on the matching branch subnetwork:
//
//	go run ./examples/serveload -addr http://localhost:8080 -groups even,odd -group-weights 3,1
//
// With -ramp the generator switches to open loop — it offers traffic at a
// scripted rate profile (step, spike or sine between -rate and -peak)
// whatever the server's backlog, which is exactly the regime the SLO
// controller (cdlserve -slo) is built for — and prints the controller's
// trajectory (rung, max_exit, windowed p99, sheds) every 500ms:
//
//	go run ./examples/serveload -addr http://localhost:8080 -ramp step -rate 300 -peak 1500 -duration 30s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cdl"
)

type classifyRequest struct {
	Images [][]float64 `json:"images"`
	Delta  *float64    `json:"delta,omitempty"`
}

// v2 request/policy wire shapes (mirrors internal/serve's v2 schema).
type v2Policy struct {
	Delta *float64 `json:"delta,omitempty"`
}

type v2ClassifyRequest struct {
	Images [][]float64 `json:"images"`
	Policy *v2Policy   `json:"policy,omitempty"`
}

type classifyResponse struct {
	Results []struct {
		Label         int     `json:"label"`
		Exit          string  `json:"exit"`
		ExitIndex     int     `json:"exit_index"`
		Node          int     `json:"node"` // 0 = trunk; routed models report the branch node
		NormalizedOps float64 `json:"normalized_ops"`
	} `json:"results"`
	Count   int    `json:"count"`
	TraceID string `json:"trace_id"`
	Spans   []span `json:"spans"`
}

// span mirrors the server's trace span shape (internal/obs.Span).
type span struct {
	Name        string  `json:"name"`
	StartUnixNS int64   `json:"start_unix_ns"`
	DurationMS  float64 `json:"duration_ms"`
	Detail      string  `json:"detail"`
}

// branchOf maps a result to its display branch: the qualified exit-name
// prefix for branch exits ("even/O1" → "even"), "trunk" otherwise.
func branchOf(exit string, node int) string {
	if i := strings.IndexByte(exit, '/'); i >= 0 {
		return exit[:i]
	}
	if node > 0 {
		return fmt.Sprintf("node%d", node)
	}
	return "trunk"
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "server base URL")
	n := flag.Int("n", 2000, "total images to send")
	concurrency := flag.Int("c", 8, "concurrent client goroutines")
	batch := flag.Int("batch", 16, "images per request")
	delta := flag.Float64("delta", -1, "per-request δ override (-1 = server default)")
	model := flag.String("model", "", "comma-separated model names to round-robin over the v2 surface (empty = /v1 on the default model)")
	seed := flag.Int64("seed", 1, "dataset seed")
	groups := flag.String("groups", "", `skew traffic toward digit groups (e.g. "even,odd"); reported exit distributions split per branch`)
	groupWeights := flag.String("group-weights", "", "comma-separated positive weights biasing the -groups draw (default uniform)")
	ramp := flag.String("ramp", "", `open-loop traffic profile: "step", "spike" or "sine" (empty = the closed-loop -n/-c mode)`)
	rate := flag.Float64("rate", 300, "open-loop base offered rate, images/sec")
	peak := flag.Float64("peak", 0, "open-loop peak offered rate, images/sec (0 = 5x -rate)")
	duration := flag.Duration("duration", 30*time.Second, "open-loop run length")
	traceSample := flag.Int("trace-sample", 0, "after the run, send N traced single-image requests and print their span timelines plus a slowest-trace summary")
	flight := flag.Bool("flight", false, "after the run, query the server's /debug/flightz flight recorder and /alertz burn-rate monitor and print the slowest retained traces plus the alert timeline")
	router := flag.Int("router", 0, "self-hosted fleet bench: boot N in-process cdlserve backends plus the cdlrouter front door on loopback and measure direct vs routed vs hedged phases (ignores -addr; needs N ≥ 2)")
	benchOut := flag.String("bench-out", "", `write the -router bench document here (e.g. "BENCH_fleet.json"; empty = print only)`)
	stragglerEvery := flag.Int64("straggler-every", 16, "-router: stall every K'th classify per backend (the injected straggler fraction is 1/K)")
	stragglerDelay := flag.Duration("straggler-delay", 150*time.Millisecond, "-router: injected straggler stall")
	hedgeDeadline := flag.Duration("hedge-deadline", 40*time.Millisecond, "-router: pinned hedge deadline for the hedged phase")
	flag.Parse()

	var models []string
	if *model != "" {
		models = strings.Split(*model, ",")
	}
	var err error
	if *router > 0 {
		err = runRouterBench(*router, *n, *concurrency, *batch, *seed,
			*stragglerEvery, *stragglerDelay, *hedgeDeadline, *benchOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serveload:", err)
			os.Exit(1)
		}
		return
	}
	if *ramp != "" {
		p := *peak
		if p <= 0 {
			p = 5 * *rate
		}
		first := ""
		if len(models) > 0 {
			first = models[0]
		}
		err = runRamp(*addr, *ramp, first, *rate, p, *duration, *batch, *seed, *groups, *groupWeights)
	} else {
		err = run(*addr, *n, *concurrency, *batch, *delta, *seed, models, *groups, *groupWeights)
	}
	if err == nil && *traceSample > 0 {
		first := ""
		if len(models) > 0 {
			first = models[0]
		}
		err = sampleTraces(*addr, first, *traceSample, *delta, *seed)
	}
	if err == nil && *flight {
		err = flightReport(*addr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
}

// Wire mirrors of the server's /debug/flightz and /alertz documents
// (internal/obs.FlightzResponse, internal/control.AlertzReport) — only the
// fields the report prints.
type flightzDoc struct {
	Tier    string `json:"tier"`
	Enabled bool   `json:"enabled"`
	Models  map[string]struct {
		Seen      int64 `json:"seen"`
		Sampled   int64 `json:"sampled"`
		Anomalous int64 `json:"anomalous"`
	} `json:"models"`
	Records []struct {
		TraceID   string   `json:"trace_id"`
		Model     string   `json:"model"`
		NodePath  string   `json:"node_path"`
		ExitIndex int      `json:"exit_index"`
		TotalMS   float64  `json:"total_ms"`
		Outcome   string   `json:"outcome"`
		Anomalies []string `json:"anomalies"`
		Spans     []span   `json:"spans"`
	} `json:"records"`
	Snapshots []struct {
		Reason       string  `json:"reason"`
		Model        string  `json:"model"`
		Rung         int     `json:"rung"`
		P99LatencyMS float64 `json:"p99_latency_ms"`
	} `json:"snapshots"`
}

type alertzDoc struct {
	Tier   string `json:"tier"`
	Active bool   `json:"active"`
	Models map[string]struct {
		Active bool `json:"active"`
		Fast   struct {
			BurnRate float64 `json:"burn_rate"`
		} `json:"fast"`
		Slow struct {
			BurnRate float64 `json:"burn_rate"`
		} `json:"slow"`
		History []struct {
			Alert    string  `json:"alert"`
			Active   bool    `json:"active"`
			AtUnixNS int64   `json:"at_unix_ns"`
			BurnRate float64 `json:"burn_rate"`
		} `json:"history"`
	} `json:"models"`
}

// flightReport pulls the server's retained flight evidence after a run:
// the slowest tail-retained traces (with their anomaly tags and span
// counts), any controller rung-down snapshots, and the burn-rate alert
// timeline — the same walk the README's triage quickstart does by hand.
func flightReport(addr string) error {
	client := &http.Client{Timeout: 10 * time.Second}

	var fd flightzDoc
	resp, err := client.Get(addr + "/debug/flightz?limit=64")
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(&fd)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decode /debug/flightz: %v", err)
	}
	fmt.Printf("\nflight recorder (%s tier, enabled=%v):\n", fd.Tier, fd.Enabled)
	var names []string
	for m := range fd.Models {
		names = append(names, m)
	}
	sort.Strings(names)
	for _, m := range names {
		st := fd.Models[m]
		fmt.Printf("  %s: %d seen, %d sampled, %d anomalous retained\n", m, st.Seen, st.Sampled, st.Anomalous)
	}
	sort.Slice(fd.Records, func(i, j int) bool { return fd.Records[i].TotalMS > fd.Records[j].TotalMS })
	top := fd.Records
	if len(top) > 8 {
		top = top[:8]
	}
	if len(top) > 0 {
		fmt.Println("slowest retained traces:")
		for _, r := range top {
			anom := "-"
			if len(r.Anomalies) > 0 {
				anom = strings.Join(r.Anomalies, ",")
			}
			fmt.Printf("  %8.3fms  %-10s exit=%-2d node=%-14s spans=%-3d anomalies=%-22s %s\n",
				r.TotalMS, r.Outcome, r.ExitIndex, r.NodePath, len(r.Spans), anom, r.TraceID)
		}
	}
	for _, s := range fd.Snapshots {
		fmt.Printf("rung-down snapshot: %s model=%s rung=%d windowed p99=%.2fms\n",
			s.Reason, s.Model, s.Rung, s.P99LatencyMS)
	}

	var ad alertzDoc
	resp, err = client.Get(addr + "/alertz")
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(&ad)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decode /alertz: %v", err)
	}
	fmt.Printf("alerts (%s tier): active=%v\n", ad.Tier, ad.Active)
	names = names[:0]
	for m := range ad.Models {
		names = append(names, m)
	}
	sort.Strings(names)
	for _, m := range names {
		st := ad.Models[m]
		fmt.Printf("  %s: active=%v fast_burn=%.2f slow_burn=%.2f\n", m, st.Active, st.Fast.BurnRate, st.Slow.BurnRate)
		for _, tr := range st.History {
			verb := "cleared"
			if tr.Active {
				verb = "fired"
			}
			fmt.Printf("    %s  %s window %s (burn %.2f)\n",
				time.Unix(0, tr.AtUnixNS).Format("15:04:05.000"), tr.Alert, verb, tr.BurnRate)
		}
	}
	return nil
}

// sampleTraces sends n traced single-image requests (each with a distinct
// X-Trace-Id, which opts the response into span detail) and prints each
// request's span timeline, then a summary of the slowest trace and the
// span that dominated it. Requests go one at a time so each timeline
// reflects an idle server — the interesting comparison is across spans
// within a request, not across requests.
func sampleTraces(addr, model string, n int, delta float64, seed int64) error {
	testImgs, err := dataset(n, seed+1, "", "")
	if err != nil {
		return err
	}
	url := addr + "/v1/classify"
	if model != "" {
		url = addr + "/v2/models/" + model + "/classify"
	}
	client := &http.Client{Timeout: 30 * time.Second}
	fmt.Printf("\ntrace sample: %d single-image requests against %s\n", n, url)
	slowest, slowestID, slowestSpan := 0.0, "", ""
	for i := 0; i < n; i++ {
		var body []byte
		if model == "" {
			req := classifyRequest{Images: [][]float64{testImgs[i].Pixels}}
			if delta >= 0 {
				req.Delta = &delta
			}
			body, err = json.Marshal(req)
		} else {
			req := v2ClassifyRequest{Images: [][]float64{testImgs[i].Pixels}}
			if delta >= 0 {
				req.Policy = &v2Policy{Delta: &delta}
			}
			body, err = json.Marshal(req)
		}
		if err != nil {
			return err
		}
		hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		// Any ID the client pins is echoed and threaded through the span
		// tree; 32 hex digits additionally survive wire-encoded edge→cloud
		// hops.
		hreq.Header.Set("X-Trace-Id", fmt.Sprintf("%032x", uint64(seed)<<16|uint64(i+1)))
		resp, err := client.Do(hreq)
		if err != nil {
			return err
		}
		payload, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return rerr
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("trace sample %d: HTTP %d: %s", i, resp.StatusCode, payload)
		}
		var out classifyResponse
		if err := json.Unmarshal(payload, &out); err != nil {
			return err
		}
		sort.Slice(out.Spans, func(a, b int) bool { return out.Spans[a].StartUnixNS < out.Spans[b].StartUnixNS })
		total, top, t0 := 0.0, "", int64(0)
		if len(out.Spans) > 0 {
			t0 = out.Spans[0].StartUnixNS
			last := out.Spans[len(out.Spans)-1]
			total = float64(last.StartUnixNS-t0)/1e6 + last.DurationMS
		}
		fmt.Printf("trace %d/%d %s  %d spans  %.2fms\n", i+1, n, out.TraceID, len(out.Spans), total)
		topDur := 0.0
		for _, s := range out.Spans {
			fmt.Printf("  +%8.3fms %9.3fms  %-24s %s\n",
				float64(s.StartUnixNS-t0)/1e6, s.DurationMS, s.Name, s.Detail)
			if s.DurationMS > topDur {
				topDur, top = s.DurationMS, s.Name
			}
		}
		if total > slowest {
			slowest, slowestID, slowestSpan = total, out.TraceID, top
		}
	}
	if slowestID != "" {
		fmt.Printf("slowest trace: %s (%.2fms), dominated by %s\n", slowestID, slowest, slowestSpan)
	}
	return nil
}

// dataset synthesizes the n-image test stream: the default balanced set,
// or the group-skewed sampler when groupSpec is set (e.g. "even,odd"
// with weights "3,1" sends three even digits for every odd one — the
// traffic shape that concentrates load on one branch of a routed
// cascade).
func dataset(n int, seed int64, groupSpec, weightSpec string) ([]cdl.Image, error) {
	if groupSpec == "" {
		if strings.TrimSpace(weightSpec) != "" {
			return nil, fmt.Errorf("-group-weights requires -groups")
		}
		_, testImgs, err := cdl.GenerateMNISTImages(1, n, seed)
		return testImgs, err
	}
	gs, err := cdl.ParseDigitGroups(groupSpec)
	if err != nil {
		return nil, err
	}
	var ws []float64
	if strings.TrimSpace(weightSpec) != "" {
		for _, p := range strings.Split(weightSpec, ",") {
			w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad -group-weights %q: %v", p, err)
			}
			ws = append(ws, w)
		}
	}
	return cdl.GenerateMNISTGrouped(n, seed, gs, ws)
}

// profileRate is λ(t): the offered rate at time t into the run.
func profileRate(profile string, base, peak float64, t, dur time.Duration) float64 {
	frac := float64(t) / float64(dur)
	switch profile {
	case "step": // base, then a sustained step to peak, then base
		if frac >= 0.25 && frac < 0.75 {
			return peak
		}
		return base
	case "spike": // a short burst at the midpoint
		if frac >= 0.5 && frac < 0.6 {
			return peak
		}
		return base
	case "sine": // one smooth period between base and peak
		return base + (peak-base)*(1-math.Cos(2*math.Pi*frac))/2
	default:
		return base
	}
}

// sloTrajectory is the slice of /v2/models/{name}/slo the trajectory
// printer reads.
type sloTrajectory struct {
	Control *struct {
		Rung       int    `json:"rung"`
		MaxRung    int    `json:"max_rung"`
		MaxExit    int    `json:"max_exit"`
		LastAction string `json:"last_action"`
		Window     struct {
			P99LatencyMS  float64 `json:"p99_latency_ms"`
			MeanExitDepth float64 `json:"mean_exit_depth"`
			Sheds         int64   `json:"sheds"`
		} `json:"window"`
	} `json:"control"`
}

// runRamp offers traffic open-loop along a scripted profile and prints
// the server-side controller trajectory alongside the client's view.
func runRamp(addr, profile, model string, base, peak float64, dur time.Duration, batch int, seed int64, groupSpec, weightSpec string) error {
	switch profile {
	case "step", "spike", "sine":
	default:
		return fmt.Errorf("unknown -ramp profile %q (want step, spike or sine)", profile)
	}
	if batch < 1 {
		return fmt.Errorf("batch must be positive")
	}
	const datasetN = 2048
	if batch > datasetN {
		return fmt.Errorf("batch %d exceeds the ramp dataset size %d", batch, datasetN)
	}
	testImgs, err := dataset(datasetN, seed, groupSpec, weightSpec)
	if err != nil {
		return err
	}
	pixels := make([][]float64, len(testImgs))
	for i, img := range testImgs {
		pixels[i] = img.Pixels
	}
	client := &http.Client{Timeout: 30 * time.Second}
	// Traffic and the printed trajectory must watch the same entry: an
	// explicit -model drives that entry's v2 surface; otherwise /v1 hits
	// the default entry, resolved here so its /slo can be polled.
	url := addr + "/v1/classify"
	if model != "" {
		url = addr + "/v2/models/" + model + "/classify"
	} else {
		resp, err := client.Get(addr + "/v2/models")
		if err != nil {
			return err
		}
		var list struct {
			Default string `json:"default"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			return err
		}
		model = list.Default
	}

	var sent, ok, shed, failed, exitSum, okImgs atomic.Int64
	fire := func(lo int) {
		body, err := json.Marshal(classifyRequest{Images: pixels[lo : lo+batch]})
		if err != nil {
			failed.Add(1)
			return
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			failed.Add(1)
			return
		}
		payload, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusServiceUnavailable:
			shed.Add(1)
		case resp.StatusCode != http.StatusOK || rerr != nil:
			failed.Add(1)
		default:
			var out classifyResponse
			if json.Unmarshal(payload, &out) != nil {
				failed.Add(1)
				return
			}
			ok.Add(1)
			okImgs.Add(int64(out.Count))
			for _, r := range out.Results {
				exitSum.Add(int64(r.ExitIndex))
			}
		}
	}

	fmt.Printf("ramp %s: %s for %v, %.0f → %.0f images/s, batch %d, model %q\n",
		profile, addr, dur, base, peak, batch, model)
	fmt.Printf("%8s %9s %9s %7s %6s %6s %9s %6s %9s %8s %s\n",
		"t", "offered/s", "okreq", "shed", "fail", "rung", "max_exit", "depth", "srv_p99", "srv_shed", "action")

	start := time.Now()
	tick := 10 * time.Millisecond
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	report := time.NewTicker(500 * time.Millisecond)
	defer report.Stop()
	// Bound in-flight requests so an overloaded server degrades the
	// generator gracefully instead of exhausting client sockets.
	sem := make(chan struct{}, 512)
	var wg sync.WaitGroup
	owed := 0.0
	next := 0
	for {
		now := time.Since(start)
		if now >= dur {
			break
		}
		select {
		case <-ticker.C:
			owed += profileRate(profile, base, peak, now, dur) * tick.Seconds()
			for owed >= float64(batch) {
				owed -= float64(batch)
				lo := next % (len(pixels) - batch + 1)
				next += batch
				sent.Add(1)
				select {
				case sem <- struct{}{}:
					wg.Add(1)
					go func(lo int) {
						defer wg.Done()
						defer func() { <-sem }()
						fire(lo)
					}(lo)
				default:
					// Client-side backpressure: count it as a shed — the
					// server is so far behind that 512 requests are in
					// flight.
					shed.Add(1)
				}
			}
		case <-report.C:
			var traj sloTrajectory
			srvP99, srvShed, rung, maxExit, action, depth := 0.0, int64(0), -1, -1, "-", 0.0
			if resp, err := client.Get(addr + "/v2/models/" + model + "/slo"); err == nil {
				if json.NewDecoder(resp.Body).Decode(&traj) == nil && traj.Control != nil {
					srvP99 = traj.Control.Window.P99LatencyMS
					srvShed = traj.Control.Window.Sheds
					rung = traj.Control.Rung
					maxExit = traj.Control.MaxExit
					action = traj.Control.LastAction
					depth = traj.Control.Window.MeanExitDepth
				}
				resp.Body.Close()
			}
			fmt.Printf("%8s %9.0f %9d %7d %6d %6d %9d %6.2f %8.1fms %8d %s\n",
				now.Round(100*time.Millisecond), profileRate(profile, base, peak, now, dur),
				ok.Load(), shed.Load(), failed.Load(), rung, maxExit, depth, srvP99, srvShed, action)
		}
	}
	wg.Wait()
	images := okImgs.Load()
	fmt.Printf("\noffered %d requests; %d ok, %d shed, %d failed\n",
		sent.Load(), ok.Load(), shed.Load(), failed.Load())
	if images > 0 {
		fmt.Printf("client-observed mean exit depth: %.3f over %d images\n",
			float64(exitSum.Load())/float64(images), images)
	}
	return nil
}

func run(addr string, n, concurrency, batch int, delta float64, seed int64, models []string, groupSpec, weightSpec string) error {
	if batch < 1 || concurrency < 1 || n < 1 {
		return fmt.Errorf("n, c and batch must be positive")
	}
	testImgs, err := dataset(n, seed, groupSpec, weightSpec)
	if err != nil {
		return err
	}
	pixels := make([][]float64, len(testImgs))
	labels := make([]int, len(testImgs))
	for i, img := range testImgs {
		pixels[i] = img.Pixels
		labels[i] = img.Label
	}

	// Carve the image stream into per-request batches up front; each chunk
	// is pinned to a model (round-robin) so the per-model tallies are
	// deterministic.
	type chunk struct {
		lo, hi int
		model  string // "" = /v1
	}
	var chunks []chunk
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		m := ""
		if len(models) > 0 {
			m = models[len(chunks)%len(models)]
		}
		chunks = append(chunks, chunk{lo, hi, m})
	}

	// encode renders a chunk's request body and URL for its surface.
	encode := func(ck chunk) (string, []byte, error) {
		imgs := pixels[ck.lo:ck.hi]
		if ck.model == "" {
			req := classifyRequest{Images: imgs}
			if delta >= 0 {
				req.Delta = &delta
			}
			b, err := json.Marshal(req)
			return addr + "/v1/classify", b, err
		}
		req := v2ClassifyRequest{Images: imgs}
		if delta >= 0 {
			req.Policy = &v2Policy{Delta: &delta}
		}
		b, err := json.Marshal(req)
		return addr + "/v2/models/" + ck.model + "/classify", b, err
	}

	client := &http.Client{Timeout: 30 * time.Second}
	work := make(chan chunk)
	latencies := make([]time.Duration, len(chunks))
	correct := make([]int, concurrency)
	sumNorm := make([]float64, concurrency)
	// Per-worker (model → exit → count) and (model → branch → count)
	// tallies, merged after the join.
	exits := make([]map[string]map[string]int, concurrency)
	branches := make([]map[string]map[string]int, concurrency)
	for w := range exits {
		exits[w] = make(map[string]map[string]int)
		branches[w] = make(map[string]map[string]int)
	}
	var firstErr error
	var errOnce sync.Once
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			failed := false
			for ck := range work {
				// After a failure keep draining the channel so the
				// producer never blocks; just stop issuing requests.
				if failed {
					continue
				}
				url, body, err := encode(ck)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed = true
					continue
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed = true
					continue
				}
				payload, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err == nil && resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("HTTP %d: %s", resp.StatusCode, payload)
				}
				var out classifyResponse
				if err == nil {
					err = json.Unmarshal(payload, &out)
				}
				if err == nil && out.Count != ck.hi-ck.lo {
					err = fmt.Errorf("got %d results for %d images", out.Count, ck.hi-ck.lo)
				}
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed = true
					continue
				}
				latencies[ck.lo/batch] = time.Since(t0)
				key := ck.model
				if key == "" {
					key = "(default)"
				}
				tally := exits[w][key]
				if tally == nil {
					tally = make(map[string]int)
					exits[w][key] = tally
				}
				btally := branches[w][key]
				if btally == nil {
					btally = make(map[string]int)
					branches[w][key] = btally
				}
				for i, r := range out.Results {
					if r.Label == labels[ck.lo+i] {
						correct[w]++
					}
					sumNorm[w] += r.NormalizedOps
					tally[r.Exit]++
					btally[branchOf(r.Exit, r.Node)]++
				}
			}
		}(w)
	}
	for _, ck := range chunks {
		work <- ck
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	totalCorrect, totalNorm := 0, 0.0
	exitTotals := make(map[string]map[string]int)
	branchTotals := make(map[string]map[string]int)
	modelImages := make(map[string]int)
	for w := 0; w < concurrency; w++ {
		totalCorrect += correct[w]
		totalNorm += sumNorm[w]
		for m, tally := range exits[w] {
			mt := exitTotals[m]
			if mt == nil {
				mt = make(map[string]int)
				exitTotals[m] = mt
			}
			for e, c := range tally {
				mt[e] += c
				modelImages[m] += c
			}
		}
		for m, tally := range branches[w] {
			mt := branchTotals[m]
			if mt == nil {
				mt = make(map[string]int)
				branchTotals[m] = mt
			}
			for b, c := range tally {
				mt[b] += c
			}
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration { return latencies[int(p*float64(len(latencies)-1))] }

	fmt.Printf("sent %d images in %d requests (%d clients, batch %d) in %v\n",
		n, len(chunks), concurrency, batch, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f images/s\n", float64(n)/elapsed.Seconds())
	fmt.Printf("request latency: p50 %v  p95 %v  p99 %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	fmt.Printf("accuracy vs generated labels: %.4f\n", float64(totalCorrect)/float64(n))
	fmt.Printf("mean normalized OPS: %.3f\n", totalNorm/float64(n))
	// The exit distribution is the early-exit thesis made visible — and
	// since the server classifies each micro-batch in one batched cascade
	// pass (compacting exited images between stages), it is also the
	// batch fast path's workload profile: the O1 fraction pays one
	// shallow GEMM, only the FC fraction pays the whole pipeline. With
	// multiple models it is reported per model: each cascade separates
	// easy from hard inputs at its own thresholds.
	var modelNames []string
	for m := range exitTotals {
		modelNames = append(modelNames, m)
	}
	sort.Strings(modelNames)
	for _, m := range modelNames {
		var names []string
		for e := range exitTotals[m] {
			names = append(names, e)
		}
		sort.Strings(names)
		fmt.Printf("exit distribution %s:", m)
		for _, e := range names {
			fmt.Printf("  %s %.1f%%", e, 100*float64(exitTotals[m][e])/float64(modelImages[m]))
		}
		fmt.Println()
		// A routed model exits through branch nodes; report how traffic
		// split across them (the trunk row is everything that exited
		// before any router fired). Linear models are all-trunk, so the
		// row is omitted unless -groups asked for the breakdown.
		if bt := branchTotals[m]; groupSpec != "" || len(bt) > 1 {
			var bnames []string
			for b := range bt {
				bnames = append(bnames, b)
			}
			sort.Strings(bnames)
			fmt.Printf("branch distribution %s:", m)
			for _, b := range bnames {
				fmt.Printf("  %s %.1f%%", b, 100*float64(bt[b])/float64(modelImages[m]))
			}
			fmt.Println()
		}
	}

	stats, err := client.Get(addr + "/statsz")
	if err != nil {
		return err
	}
	defer stats.Body.Close()
	var pretty map[string]any
	if err := json.NewDecoder(stats.Body).Decode(&pretty); err != nil {
		return err
	}
	out, _ := json.MarshalIndent(pretty, "", "  ")
	fmt.Printf("server /statsz:\n%s\n", out)
	return nil
}
