// Command serveload is a load generator for cdlserve: it synthesizes a
// deterministic MNIST-like test set, sprays it at a running server from
// concurrent clients in batched classify requests, and reports throughput,
// latency percentiles and the server's own /statsz counters.
//
// With -model it targets named models on the v2 surface — a comma list
// round-robins requests across entries (exercising multi-model dispatch in
// one process) and the exit distribution is reported per model.
//
// Usage (against a server started as in README.md):
//
//	go run ./examples/serveload -addr http://localhost:8080 -n 2000 -c 8 -batch 16
//	go run ./examples/serveload -addr http://localhost:8080 -delta 0.3   # cheaper, riskier
//	go run ./examples/serveload -addr http://localhost:8080 -model fast,accurate
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"cdl"
)

type classifyRequest struct {
	Images [][]float64 `json:"images"`
	Delta  *float64    `json:"delta,omitempty"`
}

// v2 request/policy wire shapes (mirrors internal/serve's v2 schema).
type v2Policy struct {
	Delta *float64 `json:"delta,omitempty"`
}

type v2ClassifyRequest struct {
	Images [][]float64 `json:"images"`
	Policy *v2Policy   `json:"policy,omitempty"`
}

type classifyResponse struct {
	Results []struct {
		Label         int     `json:"label"`
		Exit          string  `json:"exit"`
		NormalizedOps float64 `json:"normalized_ops"`
	} `json:"results"`
	Count int `json:"count"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "server base URL")
	n := flag.Int("n", 2000, "total images to send")
	concurrency := flag.Int("c", 8, "concurrent client goroutines")
	batch := flag.Int("batch", 16, "images per request")
	delta := flag.Float64("delta", -1, "per-request δ override (-1 = server default)")
	model := flag.String("model", "", "comma-separated model names to round-robin over the v2 surface (empty = /v1 on the default model)")
	seed := flag.Int64("seed", 1, "dataset seed")
	flag.Parse()

	var models []string
	if *model != "" {
		models = strings.Split(*model, ",")
	}
	if err := run(*addr, *n, *concurrency, *batch, *delta, *seed, models); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
}

func run(addr string, n, concurrency, batch int, delta float64, seed int64, models []string) error {
	if batch < 1 || concurrency < 1 || n < 1 {
		return fmt.Errorf("n, c and batch must be positive")
	}
	_, testImgs, err := cdl.GenerateMNISTImages(1, n, seed)
	if err != nil {
		return err
	}
	pixels := make([][]float64, len(testImgs))
	labels := make([]int, len(testImgs))
	for i, img := range testImgs {
		pixels[i] = img.Pixels
		labels[i] = img.Label
	}

	// Carve the image stream into per-request batches up front; each chunk
	// is pinned to a model (round-robin) so the per-model tallies are
	// deterministic.
	type chunk struct {
		lo, hi int
		model  string // "" = /v1
	}
	var chunks []chunk
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		m := ""
		if len(models) > 0 {
			m = models[len(chunks)%len(models)]
		}
		chunks = append(chunks, chunk{lo, hi, m})
	}

	// encode renders a chunk's request body and URL for its surface.
	encode := func(ck chunk) (string, []byte, error) {
		imgs := pixels[ck.lo:ck.hi]
		if ck.model == "" {
			req := classifyRequest{Images: imgs}
			if delta >= 0 {
				req.Delta = &delta
			}
			b, err := json.Marshal(req)
			return addr + "/v1/classify", b, err
		}
		req := v2ClassifyRequest{Images: imgs}
		if delta >= 0 {
			req.Policy = &v2Policy{Delta: &delta}
		}
		b, err := json.Marshal(req)
		return addr + "/v2/models/" + ck.model + "/classify", b, err
	}

	client := &http.Client{Timeout: 30 * time.Second}
	work := make(chan chunk)
	latencies := make([]time.Duration, len(chunks))
	correct := make([]int, concurrency)
	sumNorm := make([]float64, concurrency)
	// Per-worker (model → exit → count) tallies, merged after the join.
	exits := make([]map[string]map[string]int, concurrency)
	for w := range exits {
		exits[w] = make(map[string]map[string]int)
	}
	var firstErr error
	var errOnce sync.Once
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			failed := false
			for ck := range work {
				// After a failure keep draining the channel so the
				// producer never blocks; just stop issuing requests.
				if failed {
					continue
				}
				url, body, err := encode(ck)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed = true
					continue
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed = true
					continue
				}
				payload, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err == nil && resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("HTTP %d: %s", resp.StatusCode, payload)
				}
				var out classifyResponse
				if err == nil {
					err = json.Unmarshal(payload, &out)
				}
				if err == nil && out.Count != ck.hi-ck.lo {
					err = fmt.Errorf("got %d results for %d images", out.Count, ck.hi-ck.lo)
				}
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed = true
					continue
				}
				latencies[ck.lo/batch] = time.Since(t0)
				key := ck.model
				if key == "" {
					key = "(default)"
				}
				tally := exits[w][key]
				if tally == nil {
					tally = make(map[string]int)
					exits[w][key] = tally
				}
				for i, r := range out.Results {
					if r.Label == labels[ck.lo+i] {
						correct[w]++
					}
					sumNorm[w] += r.NormalizedOps
					tally[r.Exit]++
				}
			}
		}(w)
	}
	for _, ck := range chunks {
		work <- ck
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	totalCorrect, totalNorm := 0, 0.0
	exitTotals := make(map[string]map[string]int)
	modelImages := make(map[string]int)
	for w := 0; w < concurrency; w++ {
		totalCorrect += correct[w]
		totalNorm += sumNorm[w]
		for m, tally := range exits[w] {
			mt := exitTotals[m]
			if mt == nil {
				mt = make(map[string]int)
				exitTotals[m] = mt
			}
			for e, c := range tally {
				mt[e] += c
				modelImages[m] += c
			}
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration { return latencies[int(p*float64(len(latencies)-1))] }

	fmt.Printf("sent %d images in %d requests (%d clients, batch %d) in %v\n",
		n, len(chunks), concurrency, batch, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f images/s\n", float64(n)/elapsed.Seconds())
	fmt.Printf("request latency: p50 %v  p95 %v  p99 %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	fmt.Printf("accuracy vs generated labels: %.4f\n", float64(totalCorrect)/float64(n))
	fmt.Printf("mean normalized OPS: %.3f\n", totalNorm/float64(n))
	// The exit distribution is the early-exit thesis made visible — and
	// since the server classifies each micro-batch in one batched cascade
	// pass (compacting exited images between stages), it is also the
	// batch fast path's workload profile: the O1 fraction pays one
	// shallow GEMM, only the FC fraction pays the whole pipeline. With
	// multiple models it is reported per model: each cascade separates
	// easy from hard inputs at its own thresholds.
	var modelNames []string
	for m := range exitTotals {
		modelNames = append(modelNames, m)
	}
	sort.Strings(modelNames)
	for _, m := range modelNames {
		var names []string
		for e := range exitTotals[m] {
			names = append(names, e)
		}
		sort.Strings(names)
		fmt.Printf("exit distribution %s:", m)
		for _, e := range names {
			fmt.Printf("  %s %.1f%%", e, 100*float64(exitTotals[m][e])/float64(modelImages[m]))
		}
		fmt.Println()
	}

	stats, err := client.Get(addr + "/statsz")
	if err != nil {
		return err
	}
	defer stats.Body.Close()
	var pretty map[string]any
	if err := json.NewDecoder(stats.Body).Decode(&pretty); err != nil {
		return err
	}
	out, _ := json.MarshalIndent(pretty, "", "  ")
	fmt.Printf("server /statsz:\n%s\n", out)
	return nil
}
