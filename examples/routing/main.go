// ROUTING: tree-structured conditional routing — the linear cascade
// generalized to a class-group dispatch tree. The 6-layer trunk keeps its
// O1 early exit for easy inputs; inputs O1 declines to exit are routed by
// O1's own argmax to one of two compact specialist branches (even digits
// vs odd digits, 5 classes each) instead of running the deep trunk tail.
// The example reports accuracy and measured ops/image for the baseline,
// the linear cascade and the routed tree on the uniform test split, then
// re-measures on an even-skewed workload where the cheap branch absorbs
// most of the traffic.
//
// Run with:
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"log"

	"cdl"
)

func main() {
	trainS, testS, err := cdl.GenerateMNIST(4000, 1500, 1)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := cdl.ParseDigitGroups("even,odd")
	if err != nil {
		log.Fatal(err)
	}

	// Trunk: the paper's 6-layer baseline with its O1 exit after P1.
	arch := cdl.NewArch6(301)
	if err := cdl.TrainBaseline(arch, trainS, 7, 1); err != nil {
		log.Fatal(err)
	}
	cfg := cdl.DefaultBuildConfig()
	cfg.ForceAllStages = true // O1 must exist: it is the router
	trunk, _, err := cdl.BuildCDLN(arch, trainS, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Harvest O1's tap activations (δ=2 suppresses every exit, so each
	// training input reaches the tap) and split them by digit parity —
	// the branches train on exactly what the router will hand them.
	sess, err := cdl.NewSession(trunk)
	if err != nil {
		log.Fatal(err)
	}
	local := make(map[int][2]int) // digit -> (group, local class index)
	for gi, g := range groups {
		for li, d := range g {
			local[d] = [2]int{gi, li}
		}
	}
	branchTrain := make([][]cdl.Sample, len(groups))
	var tapShape []int
	for _, s := range trainS {
		pre := sess.ClassifyPrefix(s.X, 1, 2)
		if pre.Exited {
			log.Fatal("δ=2 should never exit")
		}
		tapShape = pre.Activation.Shape()
		gi, li := local[s.Label][0], local[s.Label][1]
		branchTrain[gi] = append(branchTrain[gi], cdl.Sample{X: pre.Activation.Clone(), Label: li})
	}

	// Specialist branches: one compact conv→pool→dense cascade per digit
	// group over the tap shape, each with its own early exit.
	names := []string{"even", "odd"}
	nodes := []*cdl.GraphNode{{Name: "trunk", Model: trunk}}
	for gi, g := range groups {
		ba, err := cdl.NewBranchArch(names[gi], tapShape, len(g), int64(400+gi))
		if err != nil {
			log.Fatal(err)
		}
		if err := cdl.TrainBaseline(ba, branchTrain[gi], 7, int64(500+gi)); err != nil {
			log.Fatal(err)
		}
		bcfg := cdl.DefaultBuildConfig()
		bcfg.ForceAllStages = true
		bc, _, err := cdl.BuildCDLN(ba, branchTrain[gi], bcfg)
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, &cdl.GraphNode{Name: names[gi], Model: bc, Labels: append([]int(nil), g...)})
	}

	// The router: O1's argmax digit selects the branch owning that digit.
	route := cdl.Route{Stage: 0, Branch: make([]int, 10)}
	for d := 0; d < 10; d++ {
		route.Branch[d] = 1 + local[d][0]
	}
	nodes[0].Routes = []cdl.Route{route}
	graph := &cdl.Graph{Nodes: nodes}

	linear, err := cdl.NewGraphSession(cdl.LinearGraph(trunk))
	if err != nil {
		log.Fatal(err)
	}
	routed, err := cdl.NewGraphSession(graph)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trunk baseline: %.0f ops/image (full forward pass)\n\n", trunk.BaselineOps())
	measure := func(label string, data []cdl.Sample, delta float64) {
		linAcc, linOps := run(linear, data, delta, nil)
		byNode := map[string]int{}
		rtAcc, rtOps := run(routed, data, delta, byNode)
		fmt.Printf("%s (%d images):\n", label, len(data))
		fmt.Printf("  linear cascade: accuracy %.4f  %8.0f ops/image (%.3f of baseline)\n",
			linAcc, linOps, linOps/trunk.BaselineOps())
		fmt.Printf("  routed tree:    accuracy %.4f  %8.0f ops/image (%.3f of baseline)\n",
			rtAcc, rtOps, rtOps/trunk.BaselineOps())
		fmt.Printf("  resolved by: trunk %d, even %d, odd %d\n\n",
			byNode["trunk"], byNode["even"], byNode["odd"])
	}
	// At the trained δ most inputs exit at O1 and few reach the router; at
	// a strict δ O1 keeps only its most confident exits and the router
	// decides the rest — the regime the specialist branches are for.
	fmt.Printf("── trained δ=%.2f ──\n", trunk.Delta)
	measure("uniform digits", testS, -1)
	const strict = 0.95
	fmt.Printf("── strict δ=%.2f ──\n", strict)
	measure("uniform digits", testS, strict)

	skewed, err := cdl.GenerateMNISTGrouped(800, 9, groups, []float64{0.8, 0.2})
	if err != nil {
		log.Fatal(err)
	}
	measure("even-skewed workload (80/20)", cdl.ImagesToSamples(skewed), strict)
}

// run classifies data serially (delta < 0 keeps the trained thresholds),
// returning accuracy and mean ops/image; if byNode is non-nil it counts
// which graph node resolved each image.
func run(sess *cdl.Session, data []cdl.Sample, delta float64, byNode map[string]int) (acc, meanOps float64) {
	nodeNames := make([]string, len(sess.Graph().Nodes))
	for i, n := range sess.Graph().Nodes {
		nodeNames[i] = n.Name
	}
	correct := 0
	for _, s := range data {
		rec := sess.ClassifyDelta(s.X, delta)
		if rec.Label == s.Label {
			correct++
		}
		meanOps += rec.Ops
		if byNode != nil {
			byNode[nodeNames[rec.Node]]++
		}
	}
	return float64(correct) / float64(len(data)), meanOps / float64(len(data))
}
