// Edgecloud: the exit cascade as an offload policy. The paper's mechanism
// — easy inputs exit at shallow stages, hard inputs pay for full depth —
// maps directly onto a two-tier deployment (cf. Long et al. 2020): a cheap
// edge node owns the shallow stages and their linear classifiers, and only
// the hard residue crosses the link to a cloud backend that resumes the
// cascade at /v1/resume.
//
// This demo trains an 8-layer CDLN, starts a real in-process cloud server,
// and sweeps the split point and δ, printing the offload fraction, the
// per-tier energy (edge compute / link / cloud compute) and the accuracy
// of each deployment. With the lossless wire encoding every row's accuracy
// equals the monolithic CDLN's — the split is semantically invisible. A
// second table ships Q2.13-quantized activations instead: 4× smaller
// payloads, so 4× less link energy, for a (usually tiny) accuracy risk.
//
// Run with:
//
//	go run ./examples/edgecloud
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"cdl"
)

func main() {
	trainS, testS, err := cdl.GenerateMNIST(3000, 800, 1)
	if err != nil {
		log.Fatal(err)
	}
	arch := cdl.NewArch8(11)
	fmt.Println("training the 8-layer baseline...")
	if err := cdl.TrainBaseline(arch, trainS, 7, 1); err != nil {
		log.Fatal(err)
	}
	bcfg := cdl.DefaultBuildConfig()
	bcfg.ForceAllStages = true // keep O3 so the sweep has four split points
	cdln, _, err := cdl.BuildCDLN(arch, trainS, bcfg)
	if err != nil {
		log.Fatal(err)
	}

	// Monolithic reference: what a single-node deployment does.
	mono, err := cdl.Evaluate(cdln, testS)
	if err != nil {
		log.Fatal(err)
	}
	monoEnergy, err := cdl.EnergyOf(cdln, mono)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmonolithic CDLN: accuracy %.4f, %.1f nJ/image (%.2fx energy improvement over baseline)\n",
		mono.Confusion.Accuracy(), monoEnergy.MeanEnergy/1000, monoEnergy.Improvement())
	fmt.Printf("link model: %.0f pJ/byte + %.1f nJ per transfer\n",
		cdl.DefaultLink().PJPerByte, cdl.DefaultLink().PerOffloadPJ/1000)

	// A real cloud backend over HTTP: the edge posts wire-encoded
	// activations to its /v1/resume exactly as a distributed deployment
	// would.
	cloud, err := cdl.NewServer(cdln, cdl.ServeConfig{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(cloud.Handler())
	defer func() { ts.Close(); cloud.Close() }()

	fmt.Println("\nlossless offload (float64 wire): accuracy is bit-identical to monolithic at every split")
	fmt.Println("delta  split  offload%   edge nJ   link nJ  cloud nJ  total nJ  accuracy")
	for _, delta := range []float64{-1, 0.60, 0.75} {
		for split := 0; split <= len(cdln.Stages); split++ {
			cfg := cdl.DefaultEdgeConfig(split)
			cfg.Delta = delta
			row, err := sweepRow(cdln, ts.URL, cfg, testS)
			if err != nil {
				log.Fatal(err)
			}
			name := "train"
			if delta >= 0 {
				name = fmt.Sprintf("%.2f ", delta)
			}
			fmt.Printf("%s   %d/%d   %6.1f%%  %8.1f  %8.1f  %8.1f  %8.1f    %.4f\n",
				name, split, len(cdln.Stages), 100*row.offloadFrac,
				row.edge, row.link, row.cloud, row.edge+row.link+row.cloud, row.accuracy)
		}
		fmt.Println()
	}

	fmt.Println("quantized offload (Q2.13 wire, trained δ): 4x smaller payloads, 4x cheaper link")
	fmt.Println("split  offload%   link nJ  bytes/offload  total nJ  accuracy")
	for split := 0; split <= len(cdln.Stages); split++ {
		cfg := cdl.DefaultEdgeConfig(split)
		cfg.Encoding = cdl.WireFixed
		row, err := sweepRow(cdln, ts.URL, cfg, testS)
		if err != nil {
			log.Fatal(err)
		}
		bytesPer := 0.0
		if row.offloads > 0 {
			bytesPer = float64(row.wireBytes) / float64(row.offloads)
		}
		fmt.Printf(" %d/%d   %6.1f%%  %8.1f      %8.0f  %8.1f    %.4f\n",
			split, len(cdln.Stages), 100*row.offloadFrac,
			row.link, bytesPer, row.edge+row.link+row.cloud, row.accuracy)
	}

	fmt.Println("\nreading the table:")
	fmt.Println(" - split 0 ships every raw input: all compute is cloud-side, the link pays for everything")
	fmt.Println(" - deeper splits exit more inputs on the edge; only the hard residue crosses the link")
	fmt.Println(" - strict δ offloads more (the edge trusts itself less), loose δ keeps traffic local")
	fmt.Println(" - the cheapest deployment is where link energy saved stops paying for edge compute added")
}

type row struct {
	offloadFrac       float64
	offloads          int
	wireBytes         int64
	edge, link, cloud float64 // mean nJ per image
	accuracy          float64
}

// sweepRow runs one edge deployment over the test set and aggregates the
// tier energies (nJ/image), offload fraction and accuracy.
func sweepRow(cdln *cdl.CDLN, cloudURL string, cfg cdl.EdgeConfig, testS []cdl.Sample) (row, error) {
	edge, err := cdl.NewEdge(cdln, cdl.NewEdgeHTTPTransport(cloudURL), cfg)
	if err != nil {
		return row{}, err
	}
	var r row
	correct := 0
	for _, s := range testS {
		res, err := edge.Classify(s.X)
		if err != nil {
			return row{}, err
		}
		if res.Record.Label == s.Label {
			correct++
		}
		if res.Offloaded {
			r.offloads++
			r.wireBytes += int64(res.WireBytes)
		}
		r.edge += res.EdgePJ
		r.link += res.LinkPJ
		r.cloud += res.CloudPJ
	}
	n := float64(len(testS))
	r.offloadFrac = float64(r.offloads) / n
	r.edge /= n * 1000 // pJ -> nJ per image
	r.link /= n * 1000
	r.cloud /= n * 1000
	r.accuracy = float64(correct) / n
	return r, nil
}
