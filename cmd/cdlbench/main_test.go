package main

import (
	"strings"
	"testing"
)

const sampleStream = `goos: linux
goarch: amd64
pkg: cdl/internal/serve
cpu: Test CPU
BenchmarkServerClassify-8   	    1000	     82123 ns/op	    1234 B/op	      12 allocs/op
BenchmarkCustomMetric-8     	     500	     41000 ns/op	        1.91 opsx
some unrelated -v log line
PASS
ok  	cdl/internal/serve	2.345s
`

func TestParseStream(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Package != "cdl/internal/serve" || b.Name != "BenchmarkServerClassify-8" || b.Iterations != 1000 {
		t.Fatalf("benchmark 0: %+v", b)
	}
	if b.Metrics["ns/op"] != 82123 || b.Metrics["B/op"] != 1234 || b.Metrics["allocs/op"] != 12 {
		t.Fatalf("benchmark 0 metrics: %v", b.Metrics)
	}
	if got := rep.Benchmarks[1].Metrics["opsx"]; got != 1.91 {
		t.Fatalf("custom metric opsx = %v, want 1.91", got)
	}
	if rep.GoVersion == "" || rep.GeneratedUnix == 0 {
		t.Fatalf("report metadata missing: %+v", rep)
	}
}

func TestParseRejectsFailure(t *testing.T) {
	for _, stream := range []string{
		"--- FAIL: TestX (0.0s)\nFAIL\n",
		"BenchmarkY-8 10 5 ns/op\nFAIL\tcdl/internal/serve\t0.1s\n",
	} {
		if _, err := parse(strings.NewReader(stream)); err == nil {
			t.Errorf("stream %q parsed without error", stream)
		}
	}
}

func TestParseIgnoresMalformedBenchLines(t *testing.T) {
	rep, err := parse(strings.NewReader("BenchmarkBroken-8 notanumber ns/op\nBenchmarkAlso broken\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage", len(rep.Benchmarks))
	}
}
