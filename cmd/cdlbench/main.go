// Command cdlbench turns `go test -bench` output into a machine-readable
// JSON file, so the repo's performance trajectory can be tracked across
// commits. CI uploads three artifacts built with it: BENCH_serve.json
// (the end-to-end serving benchmarks), BENCH_core.json (the core kernels
// — GEMM fast path vs naive conv at the paper's LeNet shapes, and the
// batched vs per-sample session; the stream may concatenate several
// packages' output, as the pkg: headers are tracked per section) and
// BENCH_registry.json (multi-model registry dispatch vs the single-model
// baseline).
//
// It reads the benchmark stream from stdin (or -in), parses every
// Benchmark line — standard metrics (ns/op, B/op, allocs/op) and custom
// ReportMetric units alike (e.g. the kernel benches' images/s) — and
// writes one JSON document:
//
//	go test -run '^$' -bench . -benchtime 100x ./internal/serve | cdlbench -out BENCH_serve.json
//
// cdlbench exits non-zero when the stream contains no benchmarks (an empty
// artifact usually means the bench invocation silently broke) or when the
// stream reports a test failure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	// Package is the Go package the benchmark ran in (from the stream's
	// "pkg:" header; empty if the stream had none).
	Package string `json:"package,omitempty"`
	// Name is the benchmark name including the GOMAXPROCS suffix, e.g.
	// "BenchmarkServerClassify-8".
	Name string `json:"name"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "value unit" pair on the line
	// (ns/op, B/op, allocs/op, and any custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted JSON document.
type Report struct {
	// GeneratedUnix is the report's creation time.
	GeneratedUnix int64 `json:"generated_unix"`
	// GoVersion is the toolchain that produced the report.
	GoVersion string `json:"go_version"`
	// Benchmarks holds every parsed benchmark in stream order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "-", `benchmark stream ("-" = stdin)`)
	out := flag.String("out", "-", `output JSON path ("-" = stdout)`)
	flag.Parse()

	if err := run(*in, *out); err != nil {
		fmt.Fprintln(os.Stderr, "cdlbench:", err)
		os.Exit(1)
	}
}

func run(in, out string) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := parse(r)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input — did the bench invocation run?")
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// parse consumes a `go test -bench` stream. It tolerates interleaved
// non-benchmark output (the tool may share a pipe with -v test logs) but
// fails on an explicit FAIL marker so CI cannot archive results from a
// broken run.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{GeneratedUnix: time.Now().Unix(), GoVersion: runtime.Version()}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case line == "FAIL" || strings.HasPrefix(line, "FAIL\t") || strings.HasPrefix(line, "--- FAIL"):
			return nil, fmt.Errorf("input stream reports a failure: %q", line)
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line, pkg)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one "BenchmarkName-8  N  v1 u1  v2 u2 ..." line.
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Package:    pkg,
		Name:       fields[0],
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
