// Command cdlrouter is the fleet front door: it fans /v1 and /v2 traffic
// across N cdlserve backends. Placement is a consistent-hash ring on
// (model, input-hash) so identical inputs keep landing on the same
// cache-warm replica, with bounded-load overflow to the next ring node;
// backends are health-probed (/readyz) and load-weighted from their own
// telemetry (/metricsz, or the cheaper /statsz?summary=1 with
// -load-source statsz); hedged requests clip the tail (after the
// per-model p95 deadline a straggler's input is re-sent to a second
// backend and the first answer wins); and PUT /v2/models/{name} at the
// router performs a rolling fleet hot-swap, one backend at a time, on top
// of each node's zero-drop registry swap.
//
// Usage:
//
//	cdlserve -model m.cdln -addr :8081 &
//	cdlserve -model m.cdln -addr :8082 &
//	cdlserve -model m.cdln -addr :8083 &
//	cdlrouter -addr :8080 -backend http://127.0.0.1:8081 \
//	          -backend http://127.0.0.1:8082 -backend http://127.0.0.1:8083 -hedge
//
//	curl -s localhost:8080/readyz
//	curl -s -X POST localhost:8080/v1/classify -d '{"images": [[...]]}'
//	curl -s -X PUT localhost:8080/v2/models/default -d '{"path": "m-v2.cdln"}'  # rolling fleet swap
//	curl -s localhost:8080/statsz      # per-backend health/load + hedge counters
//	curl -s localhost:8080/metricsz    # Prometheus text exposition (fleet_* families)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cdl/internal/fleet"
	"cdl/internal/obs"
)

// backendFlag collects repeatable -backend URLs.
type backendFlag []string

func (f *backendFlag) String() string { return fmt.Sprint([]string(*f)) }

func (f *backendFlag) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty backend URL")
	}
	*f = append(*f, v)
	return nil
}

func main() {
	var backends backendFlag
	flag.Var(&backends, "backend", "cdlserve base URL to route to (repeatable, at least one)")
	addr := flag.String("addr", ":8080", "listen address")
	probeInterval := flag.Duration("probe-interval", 0, "health/load probe period (0 = default 500ms)")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe HTTP timeout (0 = default 2s)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-attempt forward timeout (0 = default 30s)")
	replicas := flag.Int("replicas", 0, "virtual nodes per backend on the hash ring (0 = default 128)")
	loadFactor := flag.Float64("load-factor", 0, "bounded-load factor c: spill past a backend holding more than c× the mean in-flight (0 = default 2.0)")
	hedge := flag.Bool("hedge", false, "enable hedged requests: re-send stragglers past the per-model p95 deadline to a second backend")
	hedgeMin := flag.Duration("hedge-min", 0, "hedge deadline floor (0 = default 5ms)")
	hedgeMax := flag.Duration("hedge-max", 0, "hedge deadline ceiling, also used before enough samples exist (0 = default 1s)")
	loadSource := flag.String("load-source", "", `backend load telemetry: "metricsz" (parse the Prometheus exposition; default) or "statsz" (poll the compact /statsz?summary=1 JSON)`)
	adminAddr := flag.String("admin-addr", "", "separate listen address for the admin/debug surface (pprof, expvar, fleet /alertz and /debug/flightz); empty = disabled")
	flag.Parse()

	if len(backends) == 0 {
		fmt.Fprintln(os.Stderr, "cdlrouter: at least one -backend is required")
		os.Exit(2)
	}
	if err := run(backends, *addr, *adminAddr, *probeInterval, *probeTimeout, *reqTimeout,
		*replicas, *loadFactor, *hedge, *hedgeMin, *hedgeMax, *loadSource); err != nil {
		fmt.Fprintln(os.Stderr, "cdlrouter:", err)
		os.Exit(1)
	}
}

func run(backends []string, addr, adminAddr string, probeInterval, probeTimeout, reqTimeout time.Duration,
	replicas int, loadFactor float64, hedge bool, hedgeMin, hedgeMax time.Duration, loadSource string) error {
	rt, err := fleet.New(fleet.Config{
		Backends:       backends,
		ProbeInterval:  probeInterval,
		ProbeTimeout:   probeTimeout,
		RequestTimeout: reqTimeout,
		Replicas:       replicas,
		LoadFactor:     loadFactor,
		Hedge:          hedge,
		HedgeMin:       hedgeMin,
		HedgeMax:       hedgeMax,
		LoadSource:     loadSource,
	})
	if err != nil {
		return err
	}
	if adminAddr != "" {
		// The admin listener mirrors the serving tiers: the fleet alert
		// view and the router's flight recorder stay reachable even when
		// the front door is saturated.
		go func() {
			fmt.Fprintf(os.Stderr, "cdlrouter: admin surface on %s\n", adminAddr)
			err := obs.ListenAdmin(adminAddr,
				obs.AdminRoute{Pattern: "GET /alertz", Handler: rt.AlertzHandler()},
				obs.AdminRoute{Pattern: "GET /debug/flightz", Handler: rt.FlightzHandler()},
			)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cdlrouter: admin listener:", err)
			}
		}()
	}

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "cdlrouter: %v, shutting down\n", s)
		close(stop)
	}()

	hedgeNote := "off"
	if hedge {
		hedgeNote = "on"
	}
	fmt.Fprintf(os.Stderr, "cdlrouter: fronting %d backend(s) on %s (hedging %s)\n",
		len(backends), addr, hedgeNote)
	if err := rt.ListenAndServe(addr, stop); err != nil {
		return err
	}
	st := rt.Stats()
	fmt.Fprintf(os.Stderr, "cdlrouter: done; hedges sent %d (wins %d, losses %d), fleet swaps %d\n",
		st.HedgesSent, st.HedgeWins, st.HedgeLosses, st.Swaps)
	return nil
}
