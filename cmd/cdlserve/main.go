// Command cdlserve serves saved CDLN models over HTTP: batched
// classification with per-request exit policies, multi-model dispatch with
// hot-swap, liveness, and live exit/OPS/energy statistics. It is the
// runtime half of the paper's pipeline — cdltrain builds the cascade,
// cdlserve exploits it: easy inputs exit early and cost a fraction of a
// full forward pass.
//
// Usage:
//
//	cdlserve -model model.cdln -addr :8080                 # single model
//	cdlserve -model a=a.cdln -model b=b.cdln -addr :8080   # multi-model (a is the default)
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v2/models
//	curl -s -X POST localhost:8080/v1/classify -d '{"images": [[...784 floats...]], "delta": 0.6}'
//	curl -s -X POST localhost:8080/v2/models/b/classify \
//	     -d '{"images": [[...]], "policy": {"delta": 0.6, "max_exit": 1, "detail": "trace"}}'
//	curl -s -X PUT localhost:8080/v2/models/b -d '{"path": "b-v2.cdln"}'   # hot-swap
//	curl -s localhost:8080/statsz
//
// With -slo the server closes the loop between live load and the paper's
// δ knob: a feedback controller watches windowed p99 latency, queue
// occupancy and pJ/image and degrades requests without an explicit
// policy to shallower exits under load instead of shedding them:
//
//	cdlserve -model model.cdln -slo p99=15ms,queue=0.8
//	curl -s localhost:8080/v2/models/default/slo            # controller state
//	curl -s -X PUT localhost:8080/v2/models/default/slo -d '{"energy_budget_pj": 2.5e9}'
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cdl"
	"cdl/internal/control"
	"cdl/internal/obs"
	"cdl/internal/serve"
)

// modelFlag collects repeatable -model values: either a bare path (entry
// name "default") or name=path.
type modelFlag struct {
	entries []modelEntry
}

type modelEntry struct{ name, path string }

func (f *modelFlag) String() string {
	parts := make([]string, len(f.entries))
	for i, e := range f.entries {
		parts[i] = e.name + "=" + e.path
	}
	return strings.Join(parts, ",")
}

func (f *modelFlag) Set(v string) error {
	name, path := serve.DefaultModelName, v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, path = v[:i], v[i+1:]
	}
	if path == "" {
		return fmt.Errorf("empty model path in %q", v)
	}
	for _, e := range f.entries {
		if e.name == name {
			return fmt.Errorf("duplicate model name %q", name)
		}
	}
	f.entries = append(f.entries, modelEntry{name, path})
	return nil
}

func main() {
	var models modelFlag
	flag.Var(&models, "model", "model file to serve: path or name=path (repeatable; first is the default entry)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "replica pool size per model (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "work queue depth in images per model (0 = default 1024)")
	batch := flag.Int("batch", 0, "micro-batch size B (0 = default 32)")
	window := flag.Duration("window", 0, "micro-batch wait T (0 = default 200µs)")
	delta := flag.Float64("delta", -1, "override every model's trained δ at load (-1 keeps them)")
	defName := flag.String("default", "", "name of the default model entry (the /v1 alias target; default: first -model)")
	slo := flag.String("slo", "", `attach an SLO controller to every model: "p99=15ms,queue=0.8,energy=2.5e9,floor=0.5" (see internal/control.ParseSLO); requests without an explicit δ/policy degrade to shallower exits under load instead of shedding`)
	sloInterval := flag.Duration("slo-interval", 0, "SLO controller tick period (0 = default 200ms)")
	adminAddr := flag.String("admin-addr", "", "separate listen address for the admin/debug surface (pprof, expvar, phase profile); empty = disabled")
	profile := flag.Bool("profile", false, "enable the per-phase (im2col/gemm/classifier) time breakdown from startup; also toggleable at runtime via POST /debug/phaseprof on -admin-addr")
	flag.Parse()

	if len(models.entries) == 0 {
		models.entries = []modelEntry{{serve.DefaultModelName, "model.cdln"}}
	}
	obs.SetProfiling(*profile)
	if err := run(models.entries, *addr, *adminAddr, *workers, *queue, *batch, *window, *delta, *defName, *slo, *sloInterval); err != nil {
		fmt.Fprintln(os.Stderr, "cdlserve:", err)
		os.Exit(1)
	}
}

func run(models []modelEntry, addr, adminAddr string, workers, queue, batch int, window time.Duration, delta float64, defName, slo string, sloInterval time.Duration) error {
	reg := serve.NewRegistry(serve.Config{
		Workers:         workers,
		QueueDepth:      queue,
		MaxBatch:        batch,
		BatchWindow:     window,
		ModelName:       models[0].path,
		ControlInterval: sloInterval,
	})
	for _, e := range models {
		var m *serve.Model
		var err error
		if delta >= 0 {
			// Apply the load-time δ override before registration, so the
			// replica pool clones the mutated thresholds.
			var cdln *cdl.CDLN
			if cdln, err = cdl.LoadCDLN(e.path); err != nil {
				return err
			}
			cdln.Delta = delta
			cdln.StageDeltas = nil
			m, err = reg.RegisterAt(e.name, e.path, cdln)
		} else {
			m, err = reg.Load(e.name, e.path)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cdlserve: loaded %s v%d from %s (%s, %d stages)\n",
			e.name, m.Version(), e.path, m.CDLN().Arch.Name, len(m.CDLN().Stages))
	}
	if defName != "" {
		if err := reg.SetDefault(defName); err != nil {
			return err
		}
	}
	if slo != "" {
		target, err := control.ParseSLO(slo)
		if err != nil {
			return err
		}
		for _, m := range reg.Models() {
			if err := reg.SetSLO(m.Name(), target); err != nil {
				return fmt.Errorf("attach SLO to %q: %w", m.Name(), err)
			}
		}
		fmt.Fprintf(os.Stderr, "cdlserve: SLO %s attached to %d model(s)\n", target, len(reg.Models()))
	}
	srv, err := serve.NewWithRegistry(reg)
	if err != nil {
		return err
	}
	if adminAddr != "" {
		// The admin listener carries the observability query surfaces
		// alongside pprof/expvar: the flight recorder and the burn-rate
		// state stay reachable even when the data listener is saturated.
		go func() {
			fmt.Fprintf(os.Stderr, "cdlserve: admin surface on %s\n", adminAddr)
			err := obs.ListenAdmin(adminAddr,
				obs.AdminRoute{Pattern: "GET /alertz", Handler: srv.AlertzHandler()},
				obs.AdminRoute{Pattern: "GET /debug/flightz", Handler: srv.FlightzHandler()},
			)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cdlserve: admin listener:", err)
			}
		}()
	}

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "cdlserve: %v, shutting down\n", s)
		close(stop)
	}()

	fmt.Fprintf(os.Stderr, "cdlserve: %d model(s) on %s (default %q)\n",
		len(models), addr, reg.DefaultName())
	if err := srv.ListenAndServe(addr, stop); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "cdlserve: default model served %d images in %d requests (%.2fx OPS, %.2fx energy improvement)\n",
		st.Images, st.Requests, st.OpsSpeedup, st.EnergySpeedup)
	return nil
}
