// Command cdlserve serves a saved CDLN model over HTTP: batched
// classification with per-request δ override, liveness, and live
// exit/OPS/energy statistics. It is the runtime half of the paper's
// pipeline — cdltrain builds the cascade, cdlserve exploits it: easy
// inputs exit early and cost a fraction of a full forward pass.
//
// Usage:
//
//	cdlserve -model model.cdln -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/classify -d '{"images": [[...784 floats...]], "delta": 0.6}'
//	curl -s localhost:8080/statsz
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cdl"
	"cdl/internal/serve"
)

func main() {
	model := flag.String("model", "model.cdln", "model path written by cdltrain")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "replica pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "work queue depth in images (0 = default 1024)")
	batch := flag.Int("batch", 0, "micro-batch size B (0 = default 32)")
	window := flag.Duration("window", 0, "micro-batch wait T (0 = default 200µs)")
	delta := flag.Float64("delta", -1, "override the model's trained δ at load (-1 keeps it)")
	flag.Parse()

	if err := run(*model, *addr, *workers, *queue, *batch, *window, *delta); err != nil {
		fmt.Fprintln(os.Stderr, "cdlserve:", err)
		os.Exit(1)
	}
}

func run(model, addr string, workers, queue, batch int, window time.Duration, delta float64) error {
	cdln, err := cdl.LoadCDLN(model)
	if err != nil {
		return err
	}
	if delta >= 0 {
		cdln.Delta = delta
		cdln.StageDeltas = nil
	}
	srv, err := serve.New(cdln, serve.Config{
		Workers:     workers,
		QueueDepth:  queue,
		MaxBatch:    batch,
		BatchWindow: window,
		ModelName:   model,
	})
	if err != nil {
		return err
	}

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "cdlserve: %v, shutting down\n", s)
		close(stop)
	}()

	fmt.Fprintf(os.Stderr, "cdlserve: %s on %s (δ=%.2f, %d stages)\n",
		cdln.Arch.Name, addr, cdln.Delta, len(cdln.Stages))
	if err := srv.ListenAndServe(addr, stop); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "cdlserve: served %d images in %d requests (%.2fx OPS, %.2fx energy improvement)\n",
		st.Images, st.Requests, st.OpsSpeedup, st.EnergySpeedup)
	return nil
}
