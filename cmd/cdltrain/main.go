// Command cdltrain trains a baseline DLN on synthetic MNIST, builds the
// CDLN cascade with Algorithm 1, reports the gain-rule decisions and saves
// the result.
//
// Usage:
//
//	cdltrain -arch 8 -train 4000 -test 1500 -epochs 7 -delta 0.5 -out model.cdln
package main

import (
	"flag"
	"fmt"
	"os"

	"cdl"
	"cdl/internal/core"
)

func main() {
	archN := flag.Int("arch", 8, "baseline architecture: 6 (Table I) or 8 (Table II)")
	trainN := flag.Int("train", 4000, "training set size")
	testN := flag.Int("test", 1500, "test set size")
	seed := flag.Int64("seed", 1, "dataset and initialization seed")
	epochs := flag.Int("epochs", 0, "baseline training epochs (0 = per-arch default)")
	delta := flag.Float64("delta", 0.5, "confidence threshold δ")
	epsilon := flag.Float64("epsilon", 10, "gain-rule admission threshold ε (ops/input)")
	force := flag.Bool("force-stages", false, "admit every stage, skipping the gain rule")
	out := flag.String("out", "model.cdln", "output model path")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()

	if err := run(*archN, *trainN, *testN, *seed, *epochs, *delta, *epsilon, *force, *out, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "cdltrain:", err)
		os.Exit(1)
	}
}

func run(archN, trainN, testN int, seed int64, epochs int, delta, epsilon float64, force bool, out string, quiet bool) error {
	log := os.Stderr
	if quiet {
		log = nil
	}

	trainS, testS, err := cdl.GenerateMNIST(trainN, testN, seed)
	if err != nil {
		return err
	}

	var arch *cdl.Arch
	switch archN {
	case 6:
		arch = cdl.NewArch6(seed + 100)
		if epochs == 0 {
			epochs = 3
		}
	case 8:
		arch = cdl.NewArch8(seed + 200)
		if epochs == 0 {
			epochs = 7
		}
	default:
		return fmt.Errorf("-arch must be 6 or 8, got %d", archN)
	}
	if log != nil {
		fmt.Fprintf(log, "training %s baseline for %d epochs on %d samples\n", arch.Name, epochs, trainN)
	}
	if err := cdl.TrainBaseline(arch, trainS, epochs, seed); err != nil {
		return err
	}
	baseAcc := cdl.BaselineAccuracy(arch, testS)
	fmt.Printf("baseline accuracy: %.4f\n", baseAcc)

	bcfg := cdl.DefaultBuildConfig()
	bcfg.Delta = delta
	bcfg.Epsilon = epsilon
	bcfg.ForceAllStages = force
	bcfg.Seed = seed
	bcfg.Log = log
	cdln, report, err := cdl.BuildCDLN(arch, trainS, bcfg)
	if err != nil {
		return err
	}
	printReport(report)
	fmt.Print(cdln.Summary())

	res, err := cdl.Evaluate(cdln, testS)
	if err != nil {
		return err
	}
	fmt.Printf("CDLN accuracy: %.4f (%+.2f%% vs baseline)\n",
		res.Confusion.Accuracy(), 100*(res.Confusion.Accuracy()-baseAcc))
	fmt.Printf("normalized OPS: %.3f (%.2fx improvement)\n", res.NormalizedOps(), res.Improvement())

	if err := cdl.SaveCDLN(out, cdln); err != nil {
		return err
	}
	fmt.Printf("saved model to %s\n", out)
	return nil
}

func printReport(r *core.Report) {
	fmt.Printf("Algorithm 1 decisions (baseline %.0f ops):\n", r.BaselineOps)
	for _, s := range r.Stages {
		fmt.Printf("  %-3s reach=%-5d classify=%-5d lcAcc=%.3f gain=%10.1f ops/input admitted=%v\n",
			s.Name, s.Reaching, s.Classified, s.LCAccuracy, s.Gain, s.Admitted)
	}
}
