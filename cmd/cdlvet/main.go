// cdlvet is the repo-specific static-analysis suite: it type-checks the
// module with the pure-Go source importer (no external dependencies) and
// runs the passes in internal/analysis — determinism, lock discipline,
// context propagation, observability hygiene, layer-surface exhaustiveness
// and goroutine lifecycle — rejecting invariant-violating code at build
// time that the dynamic tests can only sample at run time.
//
// Usage:
//
//	go run ./cmd/cdlvet ./...                 # analyze the whole module
//	go run ./cmd/cdlvet ./internal/serve      # one package
//	go run ./cmd/cdlvet -json ./... > report.json
//	go run ./cmd/cdlvet -write-baseline ./... # grandfather current findings
//
// Findings can be waived inline with
//
//	//cdlvet:allow <analyzer>[,<analyzer>] -- <reason>
//
// on the offending line or the line above (the reason is mandatory), or
// grandfathered in the checked-in baseline file (.cdlvet.baseline.json at
// the module root, created by -write-baseline). The target state is an
// empty baseline; stale baseline entries are reported so the file only
// ever shrinks. Exit status: 0 clean, 1 findings, 2 driver error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cdl/internal/analysis"
)

const defaultBaseline = ".cdlvet.baseline.json"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("cdlvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	baselinePath := fs.String("baseline", "", "baseline file (default: <module>/"+defaultBaseline+" when present)")
	writeBaseline := fs.Bool("write-baseline", false, "write current findings to the baseline file and exit 0")
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := analysis.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "cdlvet: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "cdlvet: %v\n", err)
		return 2
	}
	mod, err := analysis.LoadModule(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "cdlvet: %v\n", err)
		return 2
	}
	if errs := mod.TypeErrors(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(stderr, "cdlvet: type error: %v\n", e)
		}
		return 2
	}

	findings := analysis.Run(mod, analyzers)
	findings = append(findings, mod.MalformedDirectives()...)

	bp := *baselinePath
	if bp == "" {
		candidate := filepath.Join(mod.Dir, defaultBaseline)
		if _, err := os.Stat(candidate); err == nil {
			bp = candidate
		}
	}
	if *writeBaseline {
		if bp == "" {
			bp = filepath.Join(mod.Dir, defaultBaseline)
		}
		if err := analysis.WriteBaseline(bp, findings); err != nil {
			fmt.Fprintf(stderr, "cdlvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "cdlvet: wrote %d baseline entries to %s\n", len(findings), bp)
		return 0
	}

	var baselined []analysis.Finding
	var stale []analysis.BaselineEntry
	if bp != "" {
		entries, err := analysis.LoadBaseline(bp)
		if err != nil {
			fmt.Fprintf(stderr, "cdlvet: %v\n", err)
			return 2
		}
		findings, baselined, stale = analysis.ApplyBaseline(findings, entries)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "cdlvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	for _, e := range stale {
		fmt.Fprintf(stderr, "cdlvet: stale baseline entry (fixed? remove it): [%s] %s: %s\n", e.Analyzer, e.File, e.Message)
	}
	if n := len(baselined); n > 0 {
		fmt.Fprintf(stderr, "cdlvet: %d finding(s) suppressed by baseline %s\n", n, bp)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "cdlvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
