// Command mnistgen generates the synthetic MNIST-like dataset used by this
// reproduction, writing standard IDX files (byte-compatible with LeCun's
// format) and optionally rendering samples as ASCII art.
//
// Usage:
//
//	mnistgen -n 60000 -test 10000 -dir ./data     # write IDX files
//	mnistgen -show 5                               # preview 5 digits
//	mnistgen -groups even,odd -group-weights 3,1  # skew toward even digits
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cdl/internal/mnist"
)

func main() {
	n := flag.Int("n", 10000, "training images to generate")
	testN := flag.Int("test", 2000, "test images to generate")
	seed := flag.Int64("seed", 1, "generator seed")
	dir := flag.String("dir", "", "write IDX files into this directory")
	show := flag.Int("show", 0, "render this many sample digits as ASCII art")
	groups := flag.String("groups", "", "draw labels from these digit groups (e.g. even,odd or 0-4,5-9) instead of a balanced cycle")
	weights := flag.String("group-weights", "", "comma-separated positive weights biasing the -groups draw (default uniform)")
	flag.Parse()

	if err := run(*n, *testN, *seed, *dir, *show, *groups, *weights); err != nil {
		fmt.Fprintln(os.Stderr, "mnistgen:", err)
		os.Exit(1)
	}
}

// parseWeights parses a comma-separated float list ("3,1" → [3 1]).
func parseWeights(spec string) ([]float64, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	ws := make([]float64, len(parts))
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad weight %q: %v", p, err)
		}
		ws[i] = w
	}
	return ws, nil
}

// generate produces the train/test split: the default balanced path for
// empty groupSpec (byte-identical to mnist.GenerateSplit), or the
// group-skewed sampler otherwise.
func generate(n, testN int, seed int64, groupSpec, weightSpec string) (trainImgs, testImgs []mnist.Image, err error) {
	if groupSpec == "" {
		if weightSpec != "" {
			return nil, nil, fmt.Errorf("-group-weights requires -groups")
		}
		return mnist.GenerateSplit(n, testN, seed)
	}
	gs, err := mnist.ParseGroups(groupSpec)
	if err != nil {
		return nil, nil, err
	}
	ws, err := parseWeights(weightSpec)
	if err != nil {
		return nil, nil, err
	}
	trainImgs, err = mnist.Generate(mnist.GenConfig{N: n, Seed: seed, Groups: gs, GroupWeights: ws})
	if err != nil {
		return nil, nil, err
	}
	// Same derived test seed as GenerateSplit, so grouped and balanced
	// datasets from one -seed stay disjoint in the same way.
	testImgs, err = mnist.Generate(mnist.GenConfig{N: testN, Seed: seed + 7919, Groups: gs, GroupWeights: ws})
	if err != nil {
		return nil, nil, err
	}
	return trainImgs, testImgs, nil
}

func run(n, testN int, seed int64, dir string, show int, groupSpec, weightSpec string) error {
	trainImgs, testImgs, err := generate(n, testN, seed, groupSpec, weightSpec)
	if err != nil {
		return err
	}

	if show > 0 {
		if show > len(trainImgs) {
			show = len(trainImgs)
		}
		for i := 0; i < show; i++ {
			fmt.Printf("label %d  difficulty %.2f\n", trainImgs[i].Label, trainImgs[i].Difficulty)
			fmt.Print(mnist.Render(trainImgs[i]))
		}
	}

	if dir == "" {
		if show == 0 {
			fmt.Printf("generated %d train / %d test images (pass -dir to write IDX files)\n", n, testN)
		}
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name   string
		imgs   []mnist.Image
		labels bool
	}{
		{"train-images-idx3-ubyte", trainImgs, false},
		{"train-labels-idx1-ubyte", trainImgs, true},
		{"t10k-images-idx3-ubyte", testImgs, false},
		{"t10k-labels-idx1-ubyte", testImgs, true},
	}
	for _, fspec := range files {
		f, err := os.Create(filepath.Join(dir, fspec.name))
		if err != nil {
			return err
		}
		if fspec.labels {
			err = mnist.WriteIDXLabels(f, fspec.imgs)
		} else {
			err = mnist.WriteIDXImages(f, fspec.imgs)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d train / %d test images to %s\n", n, testN, dir)
	return nil
}
