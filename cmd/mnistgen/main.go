// Command mnistgen generates the synthetic MNIST-like dataset used by this
// reproduction, writing standard IDX files (byte-compatible with LeCun's
// format) and optionally rendering samples as ASCII art.
//
// Usage:
//
//	mnistgen -n 60000 -test 10000 -dir ./data     # write IDX files
//	mnistgen -show 5                               # preview 5 digits
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cdl/internal/mnist"
)

func main() {
	n := flag.Int("n", 10000, "training images to generate")
	testN := flag.Int("test", 2000, "test images to generate")
	seed := flag.Int64("seed", 1, "generator seed")
	dir := flag.String("dir", "", "write IDX files into this directory")
	show := flag.Int("show", 0, "render this many sample digits as ASCII art")
	flag.Parse()

	if err := run(*n, *testN, *seed, *dir, *show); err != nil {
		fmt.Fprintln(os.Stderr, "mnistgen:", err)
		os.Exit(1)
	}
}

func run(n, testN int, seed int64, dir string, show int) error {
	trainImgs, testImgs, err := mnist.GenerateSplit(n, testN, seed)
	if err != nil {
		return err
	}

	if show > 0 {
		if show > len(trainImgs) {
			show = len(trainImgs)
		}
		for i := 0; i < show; i++ {
			fmt.Printf("label %d  difficulty %.2f\n", trainImgs[i].Label, trainImgs[i].Difficulty)
			fmt.Print(mnist.Render(trainImgs[i]))
		}
	}

	if dir == "" {
		if show == 0 {
			fmt.Printf("generated %d train / %d test images (pass -dir to write IDX files)\n", n, testN)
		}
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name   string
		imgs   []mnist.Image
		labels bool
	}{
		{"train-images-idx3-ubyte", trainImgs, false},
		{"train-labels-idx1-ubyte", trainImgs, true},
		{"t10k-images-idx3-ubyte", testImgs, false},
		{"t10k-labels-idx1-ubyte", testImgs, true},
	}
	for _, fspec := range files {
		f, err := os.Create(filepath.Join(dir, fspec.name))
		if err != nil {
			return err
		}
		if fspec.labels {
			err = mnist.WriteIDXLabels(f, fspec.imgs)
		} else {
			err = mnist.WriteIDXImages(f, fspec.imgs)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d train / %d test images to %s\n", n, testN, dir)
	return nil
}
