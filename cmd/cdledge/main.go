// Command cdledge runs the edge half of a split CDLN deployment: it owns
// the cascade prefix up to -split stages, answers /v1/classify locally when
// the δ-rule fires, and offloads the hard residue to a cdlserve backend's
// /v1/resume as wire-encoded activations. Clients speak the same JSON
// schema to an edge node as to a full server.
//
// Usage (cloud first, then the edge against it):
//
//	cdlserve -model model.cdln -addr :8080
//	cdledge  -model model.cdln -addr :8081 -cloud http://localhost:8080 -split 1
//
// Against a multi-model cloud, -cloud-model names the registry entry this
// edge's cascade belongs to (offloads then use /v2/models/{name}/resume),
// so one cloud tier can back heterogeneous edge splits.
//
//	curl -s -X POST localhost:8081/v1/classify -d '{"images": [[...784 floats...]]}'
//	curl -s localhost:8081/statsz   # offload fraction, edge/link/cloud pJ
//
// -encoding fixed ships Q2.13-quantized activations (4x smaller payloads,
// no bit-identity guarantee); the default float64 encoding keeps split
// results bit-identical to a monolithic server.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"cdl"
	"cdl/internal/control"
	"cdl/internal/edgecloud"
	"cdl/internal/edgecloud/wire"
	"cdl/internal/energy"
	"cdl/internal/obs"
)

func main() {
	model := flag.String("model", "model.cdln", "model path written by cdltrain")
	addr := flag.String("addr", ":8081", "listen address")
	cloud := flag.String("cloud", "http://localhost:8080", "cloud cdlserve base URL for offloads")
	cloudModel := flag.String("cloud-model", "", "named model on the cloud registry to resume on (empty = the cloud's default model via /v1/resume)")
	split := flag.Int("split", 1, "cascade stages owned by this edge node (0 = offload everything)")
	delta := flag.Float64("delta", -1, "δ override for the local exit rule (-1 keeps the trained thresholds)")
	workers := flag.Int("workers", 0, "edge runtime pool size (0 = GOMAXPROCS)")
	encoding := flag.String("encoding", "float64", `offload payload encoding: "float64" (lossless) or "fixed" (Q2.13, 4x smaller)`)
	pjByte := flag.Float64("pjbyte", energy.DefaultLink().PJPerByte, "link energy model: pJ per transmitted byte")
	pjOffload := flag.Float64("pjoffload", energy.DefaultLink().PerOffloadPJ, "link energy model: fixed pJ per transfer")
	slo := flag.String("slo", "", `adapt the offload split to an SLO: "p99=20ms,queue=0.8,energy=2.5e9" — under pressure the controller resolves inputs locally at the last edge stage instead of queueing on the cloud (requests with an explicit δ bypass it)`)
	adminAddr := flag.String("admin-addr", "", "separate listen address for the admin/debug surface (pprof, expvar, phase profile); empty = disabled")
	profile := flag.Bool("profile", false, "enable the per-phase (im2col/gemm/classifier) time breakdown from startup; also toggleable at runtime via POST /debug/phaseprof on -admin-addr")
	flag.Parse()

	obs.SetProfiling(*profile)
	if err := run(*model, *addr, *adminAddr, *cloud, *cloudModel, *encoding, *slo, *split, *workers, *delta, *pjByte, *pjOffload); err != nil {
		fmt.Fprintln(os.Stderr, "cdledge:", err)
		os.Exit(1)
	}
}

func run(model, addr, adminAddr, cloud, cloudModel, encoding, slo string, split, workers int, delta, pjByte, pjOffload float64) error {
	cdln, err := cdl.LoadCDLN(model)
	if err != nil {
		return err
	}
	var target control.SLO
	if slo != "" {
		if target, err = control.ParseSLO(slo); err != nil {
			return err
		}
	}
	var enc wire.Encoding
	switch encoding {
	case "float64", "f64":
		enc = wire.EncodingFloat64
	case "fixed", "q2.13":
		enc = wire.EncodingFixed
	default:
		return fmt.Errorf("unknown -encoding %q (want float64 or fixed)", encoding)
	}

	srv, err := edgecloud.NewServer(cdln,
		func() (edgecloud.Transport, error) {
			if cloudModel != "" {
				return edgecloud.NewHTTPModelTransport(cloud, cloudModel), nil
			}
			return edgecloud.NewHTTPTransport(cloud), nil
		},
		edgecloud.Config{
			SplitStage: split,
			Delta:      delta,
			Encoding:   enc,
			Link:       energy.Link{PJPerByte: pjByte, PerOffloadPJ: pjOffload},
		},
		edgecloud.ServerConfig{
			Workers:    workers,
			ModelName:  model,
			CloudURL:   cloud,
			CloudModel: cloudModel,
			SLO:        target,
		})
	if err != nil {
		return err
	}
	if adminAddr != "" {
		// The admin listener carries the observability query surfaces
		// alongside pprof/expvar: the flight recorder and the burn-rate
		// state stay reachable even when the data listener is saturated.
		go func() {
			fmt.Fprintf(os.Stderr, "cdledge: admin surface on %s\n", adminAddr)
			err := obs.ListenAdmin(adminAddr,
				obs.AdminRoute{Pattern: "GET /alertz", Handler: srv.AlertzHandler()},
				obs.AdminRoute{Pattern: "GET /debug/flightz", Handler: srv.FlightzHandler()},
			)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cdledge: admin listener:", err)
			}
		}()
	}

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "cdledge: %v, shutting down\n", s)
		close(stop)
	}()

	fmt.Fprintf(os.Stderr, "cdledge: %s on %s, split=%d/%d stages, %s offload to %s\n",
		cdln.Arch.Name, addr, split, len(cdln.Stages), enc, cloud)
	if err := srv.ListenAndServe(addr, stop); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "cdledge: served %d images, %.1f%% offloaded (%.0f edge / %.0f link / %.0f cloud pJ per image)\n",
		st.Images, 100*st.Tier.OffloadFraction, st.Tier.MeanEdgePJ, st.Tier.MeanLinkPJ, st.Tier.MeanCloudPJ)
	return nil
}
