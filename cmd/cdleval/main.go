// Command cdleval evaluates a saved CDLN model on a freshly generated test
// set: accuracy, per-digit normalized OPS, exit distribution, and 45 nm
// energy — optionally overriding the runtime confidence threshold δ (the
// paper's runtime knob, §III.B).
//
// Usage:
//
//	cdleval -model model.cdln -test 1500 -delta 0.6
package main

import (
	"flag"
	"fmt"
	"os"

	"cdl"
	"cdl/internal/mnist"
)

func main() {
	model := flag.String("model", "model.cdln", "model path written by cdltrain")
	testN := flag.Int("test", 1500, "test set size")
	seed := flag.Int64("seed", 1, "dataset seed (match cdltrain's for the same split)")
	delta := flag.Float64("delta", -1, "override runtime δ (-1 keeps the trained value)")
	tune := flag.Bool("tune", false, "tune per-stage thresholds on a fresh validation split before evaluating")
	perDigit := flag.Bool("per-digit", true, "print per-digit statistics")
	flag.Parse()

	if err := run(*model, *testN, *seed, *delta, *tune, *perDigit); err != nil {
		fmt.Fprintln(os.Stderr, "cdleval:", err)
		os.Exit(1)
	}
}

func run(model string, testN int, seed int64, delta float64, tune, perDigit bool) error {
	cdln, err := cdl.LoadCDLN(model)
	if err != nil {
		return err
	}
	if delta >= 0 {
		cdln.Delta = delta
		cdln.StageDeltas = nil
	}
	if tune {
		valS, _, err := cdl.GenerateMNIST(testN, 1, seed+4242)
		if err != nil {
			return err
		}
		deltas, _, err := cdl.TuneDeltas(cdln, valS)
		if err != nil {
			return err
		}
		fmt.Printf("tuned per-stage δ: %v\n", deltas)
	}
	fmt.Print(cdln.Summary())

	_, testS, err := cdl.GenerateMNIST(1, testN, seed)
	if err != nil {
		return err
	}
	res, err := cdl.Evaluate(cdln, testS)
	if err != nil {
		return err
	}
	fmt.Printf("accuracy: %.4f\n", res.Confusion.Accuracy())
	if n := res.NormalizedOps(); n > 0 {
		fmt.Printf("normalized OPS: %.3f (%.2fx improvement)\n", n, res.Improvement())
	} else {
		fmt.Println("normalized OPS: n/a (empty evaluation)")
	}
	for e, name := range res.ExitNames {
		fmt.Printf("  exit %-4s %5.1f%%\n", name, 100*res.ExitFraction(e, -1))
	}

	sum, err := cdl.EnergyOf(cdln, res)
	if err != nil {
		return err
	}
	fmt.Printf("energy: %.1f nJ/input vs baseline %.1f nJ (%.2fx improvement)\n",
		sum.MeanEnergy/1000, sum.BaselineEnergy/1000, sum.Improvement())

	if perDigit {
		fmt.Println("digit  class-acc  normOPS  normEnergy  FC-activated")
		fcExit := len(res.ExitNames) - 1
		for d := 0; d < mnist.Classes; d++ {
			fmt.Printf("  %d     %.4f    %.3f     %.3f       %5.1f%%\n",
				d, res.Confusion.ClassAccuracy(d), res.ClassNormalizedOps(d),
				sum.ClassNormalized(d), 100*res.ExitFraction(fcExit, d))
		}
	}
	return nil
}
