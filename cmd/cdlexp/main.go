// Command cdlexp reproduces every table and figure of the paper's
// evaluation section (Tables I–IV, Figs. 5–10) in one run, printing each in
// paper order. Pass -small for a quick smoke-scale run, or -out to also
// write the report to a file.
//
// Usage:
//
//	cdlexp            # paper-scale defaults, ~30s
//	cdlexp -small     # reduced sizes, ~10s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cdl/internal/experiments"
)

func main() {
	small := flag.Bool("small", false, "use the reduced test-scale configuration")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	analysis := flag.Bool("analysis", false, "also run the per-exit precision and accelerator design-space analyses")
	robust := flag.Int("robust", 0, "also replicate the MNIST_3C headline across N fresh seeds")
	out := flag.String("out", "", "also write the report to this file")
	trainN := flag.Int("train", 0, "override training set size")
	testN := flag.Int("test", 0, "override test set size")
	seed := flag.Int64("seed", 0, "override seed")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *small {
		cfg = experiments.SmallConfig()
	}
	if *trainN > 0 {
		cfg.TrainN = *trainN
	}
	if *testN > 0 {
		cfg.TestN = *testN
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}

	start := time.Now()
	ctx := experiments.NewContext(cfg)
	report, err := experiments.RunAll(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdlexp:", err)
		os.Exit(1)
	}
	if *ablations {
		abl, err := experiments.RunAblations(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdlexp:", err)
			os.Exit(1)
		}
		report += "\n" + abl
	}
	if *analysis {
		sa, err := experiments.StageAccuracy(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdlexp:", err)
			os.Exit(1)
		}
		sweep, err := experiments.AcceleratorSweep(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdlexp:", err)
			os.Exit(1)
		}
		report += "\n" + sa.String() + "\n" + sweep.String()
	}
	if *robust > 0 {
		seeds := make([]int64, *robust)
		for i := range seeds {
			seeds[i] = cfg.Seed + int64(i)
		}
		rb, err := experiments.Robustness(cfg, seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdlexp:", err)
			os.Exit(1)
		}
		report += "\n" + rb.String()
	}
	fmt.Println(report)
	fmt.Fprintf(os.Stderr, "completed in %v\n", time.Since(start).Round(time.Millisecond))

	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cdlexp: write report:", err)
			os.Exit(1)
		}
	}
}
