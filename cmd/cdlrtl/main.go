// Command cdlrtl emits the RTL artifacts the paper's hardware flow
// consumed: structural Verilog for each CDL stage-classifier datapath
// (with the δ-gated activation module), a testbench, and the
// synthesis-style area/energy summary from the 45 nm netlist model.
//
// Usage:
//
//	cdlrtl -arch 8 -dir rtl/     # write o1.v, o2.v, o3.v + testbenches
//	cdlrtl -arch 8               # print the area/energy summary only
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"cdl/internal/hw"
	"cdl/internal/nn"
)

func main() {
	archN := flag.Int("arch", 8, "baseline architecture: 6 or 8")
	dir := flag.String("dir", "", "write Verilog files into this directory")
	flag.Parse()

	if err := run(*archN, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "cdlrtl:", err)
		os.Exit(1)
	}
}

func run(archN int, dir string) error {
	var arch *nn.Arch
	switch archN {
	case 6:
		arch = nn.Arch6Layer(rand.New(rand.NewSource(1)))
	case 8:
		arch = nn.Arch8Layer(rand.New(rand.NewSource(1)))
	default:
		return fmt.Errorf("-arch must be 6 or 8, got %d", archN)
	}
	acc := hw.Default45nm()

	fmt.Printf("=== %s baseline accelerator ===\n", arch.Name)
	fmt.Print(hw.Synthesize(arch.Name, arch.Net, acc))
	fmt.Println()

	for i := range arch.Taps {
		name := fmt.Sprintf("cdl_o%d", i+1)
		in := arch.TapFeatureLen(i)
		nl := hw.SynthesizeClassifier(name, in, arch.NumClasses, acc)
		fmt.Print(nl)
		e := acc.LayerEnergy(hw.LinearClassifierActivity(in, arch.NumClasses))
		fmt.Printf("  energy per evaluation: %.2f nJ in %.0f cycles\n\n", e.Total()/1000, e.Cycles)

		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		mod, err := hw.EmitClassifierVerilog(name, in, arch.NumClasses, acc.Tech.Width)
		if err != nil {
			return err
		}
		tb, err := hw.EmitClassifierTestbench(name, in, arch.NumClasses, acc.Tech.Width)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name+".v"), []byte(mod), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name+"_tb.v"), []byte(tb), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s.v and %s_tb.v\n\n", name, name)
	}
	return nil
}
